#ifndef CSC_TESTS_TEST_UTIL_H_
#define CSC_TESTS_TEST_UTIL_H_

#include <vector>

#include "graph/digraph.h"
#include "graph/generators.h"
#include "graph/ordering.h"
#include "util/random.h"

namespace csc {

/// The worked example of the paper: the directed graph of Figure 2
/// (10 vertices; v1..v10 map to ids 0..9). Its hub labeling under degree
/// ordering is printed in Table II, the CSC labels of v7 in Table III, and
/// SCCnt(v7) = 3 with length 6 (Examples 1, 3, 6).
inline DiGraph Figure2Graph() {
  // v1->v3, v1->v4, v1->v5, v3->v6, v4->v7, v5->v7, v6->v7, v7->v8,
  // v8->v9, v9->v10, v10->v1, v10->v2, v2->v4.
  std::vector<Edge> edges = {{0, 2}, {0, 3}, {0, 4}, {2, 5}, {3, 6},
                             {4, 6}, {5, 6}, {6, 7}, {7, 8}, {8, 9},
                             {9, 0}, {9, 1}, {1, 3}};
  return DiGraph::FromEdges(10, edges);
}

/// Example 4's ordering: v1 ≺ v7 ≺ v4 ≺ v10 ≺ v2 ≺ v3 ≺ v5 ≺ v6 ≺ v8 ≺ v9.
/// (DegreeOrdering(Figure2Graph()) reproduces it; tests assert that too.)
inline VertexOrdering Figure2Ordering() {
  return OrderingFromPermutation({0, 6, 3, 9, 1, 2, 4, 5, 7, 8});
}

/// A small random directed graph for property tests: n vertices, ~density*n
/// edges, deterministic in `seed`.
inline DiGraph RandomGraph(Vertex n, double density, uint64_t seed) {
  auto m = static_cast<uint64_t>(density * n);
  return GenerateErdosRenyi(n, m, seed);
}

}  // namespace csc

#endif  // CSC_TESTS_TEST_UTIL_H_
