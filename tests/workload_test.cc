#include <gtest/gtest.h>

#include <set>

#include "tests/test_util.h"
#include "workload/datasets.h"
#include "workload/degree_clusters.h"
#include "workload/query_workload.h"
#include "workload/reporter.h"
#include "workload/update_workload.h"

namespace csc {
namespace {

TEST(DegreeClustersTest, EveryVertexAssignedExactlyOnce) {
  DiGraph g = RandomGraph(500, 3.0, 1);
  DegreeClustering clustering = DegreeClustering::ByMinInOutDegree(g);
  size_t total = 0;
  for (int c = 0; c < kNumDegreeClusters; ++c) {
    total += clustering.Members(static_cast<DegreeCluster>(c)).size();
  }
  EXPECT_EQ(total, g.num_vertices());
}

TEST(DegreeClustersTest, HighClusterHasHigherKeysThanBottom) {
  DiGraph g = GeneratePreferentialAttachment(2000, 2, 0.2, 3);
  DegreeClustering clustering = DegreeClustering::ByMinInOutDegree(g);
  const auto& high = clustering.Members(DegreeCluster::kHigh);
  const auto& bottom = clustering.Members(DegreeCluster::kBottom);
  ASSERT_FALSE(bottom.empty());
  for (Vertex v : high) {
    for (Vertex w : bottom) {
      EXPECT_GT(g.MinInOutDegree(v), g.MinInOutDegree(w));
    }
  }
}

TEST(DegreeClustersTest, BandsSplitRangeEvenly) {
  // Keys 0..99: bands of width 20 -> key 95 High, key 5 Bottom.
  std::vector<size_t> keys(100);
  for (size_t i = 0; i < 100; ++i) keys[i] = i;
  DegreeClustering clustering = DegreeClustering::ByKeys(keys);
  EXPECT_EQ(clustering.ClusterOf(95), DegreeCluster::kHigh);
  EXPECT_EQ(clustering.ClusterOf(99), DegreeCluster::kHigh);
  EXPECT_EQ(clustering.ClusterOf(5), DegreeCluster::kBottom);
  EXPECT_EQ(clustering.ClusterOf(50), DegreeCluster::kMidLow);
}

TEST(DegreeClustersTest, UniformKeysAllBottom) {
  std::vector<size_t> keys(10, 7);
  DegreeClustering clustering = DegreeClustering::ByKeys(keys);
  EXPECT_EQ(clustering.Members(DegreeCluster::kBottom).size(), 10u);
}

TEST(DegreeClustersTest, ClusterNamesMatchPaper) {
  EXPECT_EQ(DegreeClusterName(DegreeCluster::kHigh), "High");
  EXPECT_EQ(DegreeClusterName(DegreeCluster::kMidHigh), "Mid-high");
  EXPECT_EQ(DegreeClusterName(DegreeCluster::kMidLow), "Mid-low");
  EXPECT_EQ(DegreeClusterName(DegreeCluster::kLow), "Low");
  EXPECT_EQ(DegreeClusterName(DegreeCluster::kBottom), "Bottom");
}

TEST(QueryWorkloadTest, SmallGraphUsesAllVertices) {
  DiGraph g = RandomGraph(200, 3.0, 5);
  QueryWorkload workload = MakeQueryWorkload(g, 50000, 1);
  EXPECT_EQ(workload.TotalQueries(), g.num_vertices());
}

TEST(QueryWorkloadTest, LargeGraphSampledDown) {
  DiGraph g = RandomGraph(2000, 3.0, 7);
  QueryWorkload workload = MakeQueryWorkload(g, 500, 1);
  EXPECT_LE(workload.TotalQueries(), 600u);
  EXPECT_GE(workload.TotalQueries(), 400u);
  // No duplicates within a cluster.
  for (const auto& cluster : workload.queries) {
    std::set<Vertex> unique(cluster.begin(), cluster.end());
    EXPECT_EQ(unique.size(), cluster.size());
  }
}

TEST(QueryWorkloadTest, DeterministicPerSeed) {
  DiGraph g = RandomGraph(2000, 3.0, 9);
  QueryWorkload a = MakeQueryWorkload(g, 300, 42);
  QueryWorkload b = MakeQueryWorkload(g, 300, 42);
  EXPECT_EQ(a.queries, b.queries);
}

TEST(UpdateWorkloadTest, SampleExistingEdgesAreReal) {
  DiGraph g = RandomGraph(300, 3.0, 11);
  std::vector<Edge> sample = SampleExistingEdges(g, 100, 13);
  EXPECT_EQ(sample.size(), 100u);
  std::set<std::pair<Vertex, Vertex>> seen;
  for (const Edge& e : sample) {
    EXPECT_TRUE(g.HasEdge(e.from, e.to));
    EXPECT_TRUE(seen.emplace(e.from, e.to).second);
  }
}

TEST(UpdateWorkloadTest, SampleNewEdgesAreAbsent) {
  DiGraph g = RandomGraph(300, 3.0, 15);
  std::vector<Edge> sample = SampleNewEdges(g, 50, 17);
  EXPECT_EQ(sample.size(), 50u);
  for (const Edge& e : sample) {
    EXPECT_FALSE(g.HasEdge(e.from, e.to));
    EXPECT_NE(e.from, e.to);
  }
}

TEST(UpdateWorkloadTest, EdgeDegreeDefinition) {
  DiGraph g = Figure2Graph();
  // Edge v7->v8 (6->7): indeg(v7) = 3, outdeg(v8) = 1.
  EXPECT_EQ(EdgeDegree(g, {6, 7}), 4u);
}

TEST(ReporterTest, CsvEscapesAndRoundTrips) {
  TableReporter reporter("Test Table", {"name", "value"});
  reporter.AddRow({"plain", "1"});
  reporter.AddRow({"with,comma", "2"});
  reporter.AddRow({"with\"quote", "3"});
  std::string csv = reporter.ToCsv();
  EXPECT_NE(csv.find("name,value"), std::string::npos);
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(ReporterTest, FormatHelpers) {
  EXPECT_EQ(TableReporter::FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(TableReporter::FormatCount(0), "0");
  EXPECT_EQ(TableReporter::FormatCount(999), "999");
  EXPECT_EQ(TableReporter::FormatCount(1000), "1,000");
  EXPECT_EQ(TableReporter::FormatCount(1234567), "1,234,567");
}

TEST(DatasetsTest, AllNineTableIVGraphsPresent) {
  const auto& datasets = AllDatasets();
  ASSERT_EQ(datasets.size(), 9u);
  EXPECT_EQ(datasets.front().name, "G04");
  EXPECT_EQ(datasets.back().name, "WSR");
  // Paper-scale edge counts are ordered as in Table IV.
  for (size_t i = 1; i < datasets.size(); ++i) {
    EXPECT_GT(datasets[i].paper_m, datasets[i - 1].paper_m);
  }
}

TEST(DatasetsTest, FindByName) {
  auto spec = FindDataset("WKT");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->description, "wiki-Talk");
  EXPECT_FALSE(FindDataset("NOPE").has_value());
}

TEST(DatasetsTest, MaterializeIsDeterministicAndScaled) {
  auto spec = FindDataset("G04").value();
  DiGraph a = MaterializeDataset(spec, 0.1);
  DiGraph b = MaterializeDataset(spec, 0.1);
  EXPECT_EQ(a.Edges(), b.Edges());
  DiGraph small = MaterializeDataset(spec, 0.05);
  EXPECT_LT(small.num_vertices(), a.num_vertices());
  EXPECT_GT(small.num_vertices(), 0u);
}

}  // namespace
}  // namespace csc
