#include "graph/bipartite.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace csc {
namespace {

TEST(BipartiteTest, VertexEncodingHelpers) {
  EXPECT_EQ(InVertex(5), 10u);
  EXPECT_EQ(OutVertex(5), 11u);
  EXPECT_EQ(CoupleOf(10u), 11u);
  EXPECT_EQ(CoupleOf(11u), 10u);
  EXPECT_EQ(OriginalOf(10u), 5u);
  EXPECT_EQ(OriginalOf(11u), 5u);
  EXPECT_TRUE(IsInVertex(10u));
  EXPECT_TRUE(IsOutVertex(11u));
}

TEST(BipartiteTest, ConversionHasPaperSizes) {
  // Algorithm 2: G_b has 2n vertices and n + m edges.
  DiGraph g = Figure2Graph();
  DiGraph gb = BipartiteConversion(g);
  EXPECT_EQ(gb.num_vertices(), 2 * g.num_vertices());
  EXPECT_EQ(gb.num_edges(), g.num_vertices() + g.num_edges());
}

TEST(BipartiteTest, CoupleEdgesPresent) {
  DiGraph gb = BipartiteConversion(Figure2Graph());
  for (Vertex v = 0; v < 10; ++v) {
    EXPECT_TRUE(gb.HasEdge(InVertex(v), OutVertex(v)));
    EXPECT_FALSE(gb.HasEdge(OutVertex(v), InVertex(v)));
  }
}

TEST(BipartiteTest, OriginalEdgesBecomeOutToIn) {
  DiGraph g = Figure2Graph();
  DiGraph gb = BipartiteConversion(g);
  for (const Edge& e : g.Edges()) {
    EXPECT_TRUE(gb.HasEdge(OutVertex(e.from), InVertex(e.to)));
  }
}

TEST(BipartiteTest, GraphIsBipartiteBetweenSides) {
  // Every edge goes V_in -> V_out (couple) or V_out -> V_in (original).
  DiGraph gb = BipartiteConversion(RandomGraph(100, 3.0, 3));
  for (const Edge& e : gb.Edges()) {
    EXPECT_NE(IsInVertex(e.from), IsInVertex(e.to));
  }
}

TEST(BipartiteTest, InVertexDegreesMirrorOriginal) {
  DiGraph g = Figure2Graph();
  DiGraph gb = BipartiteConversion(g);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    // v_i carries v's in-edges plus the couple edge out.
    EXPECT_EQ(gb.InDegree(InVertex(v)), g.InDegree(v));
    EXPECT_EQ(gb.OutDegree(InVertex(v)), 1u);
    // v_o carries v's out-edges plus the couple edge in.
    EXPECT_EQ(gb.OutDegree(OutVertex(v)), g.OutDegree(v));
    EXPECT_EQ(gb.InDegree(OutVertex(v)), 1u);
  }
}

TEST(BipartiteTest, OrderingKeepsCouplesConsecutive) {
  VertexOrdering original = DegreeOrdering(Figure2Graph());
  VertexOrdering lifted = BipartiteOrdering(original);
  ASSERT_EQ(lifted.size(), 2 * original.size());
  for (Rank r = 0; r < original.size(); ++r) {
    Vertex v = original.rank_to_vertex[r];
    EXPECT_EQ(lifted.vertex_to_rank[InVertex(v)], 2 * r);
    EXPECT_EQ(lifted.vertex_to_rank[OutVertex(v)], 2 * r + 1);
    EXPECT_TRUE(lifted.Precedes(InVertex(v), OutVertex(v)));
  }
}

TEST(BipartiteTest, OrderingPreservesOriginalRelativeOrder) {
  VertexOrdering original = DegreeOrdering(Figure2Graph());
  VertexOrdering lifted = BipartiteOrdering(original);
  // v1 ≺ v7 in G implies all four lifted comparisons.
  EXPECT_TRUE(lifted.Precedes(InVertex(0), InVertex(6)));
  EXPECT_TRUE(lifted.Precedes(OutVertex(0), InVertex(6)));
  EXPECT_TRUE(lifted.Precedes(InVertex(0), OutVertex(6)));
  EXPECT_TRUE(lifted.Precedes(OutVertex(0), OutVertex(6)));
}

}  // namespace
}  // namespace csc
