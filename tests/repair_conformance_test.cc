// Incremental-repair conformance: a repair-enabled engine that lands
// static-backend batches as bounded label patches must stay bit-identical
// to the sequential full-rebuild oracle. For every patchable backend and
// shard count, a net-restoring mixed insert/delete sequence followed by
// Drain() must serialize byte-for-byte equal to a from-scratch build of the
// same graph; non-restoring sequences must match the always-derive twin
// (same pinned ordering, no patch path); budget knobs only change *how* a
// batch lands, never the bytes; and unpatchable or dynamic backends fall
// back to their legacy paths untouched.
#include <atomic>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/bfs_cycle.h"
#include "serving/engine.h"
#include "serving/sharded_engine.h"
#include "tests/test_util.h"
#include "workload/update_workload.h"

namespace csc {
namespace {

std::vector<CycleCount> BfsReference(const DiGraph& graph) {
  BfsCycleCounter reference(graph);
  std::vector<CycleCount> answers(graph.num_vertices());
  for (Vertex v = 0; v < graph.num_vertices(); ++v) {
    answers[v] = reference.CountCycles(v);
  }
  return answers;
}

// Deterministic non-edges of `graph`, spread across the vertex space.
std::vector<Edge> AbsentEdges(const DiGraph& graph, size_t count) {
  std::vector<Edge> edges;
  Vertex n = graph.num_vertices();
  for (Vertex v = 0; v < n && edges.size() < count; v += 3) {
    Vertex w = (v + n / 2 + 1) % n;
    if (v != w && !graph.HasEdge(v, w)) edges.push_back({v, w});
  }
  return edges;
}

// Three mixed insert/delete batches whose composition restores `graph`
// exactly: every absent edge inserted is later removed and every present
// edge removed is later re-inserted, but no single batch is a no-op. After
// the sequence the pinned repair ordering equals the fresh-build ordering,
// which is what makes byte-comparison against a from-scratch build valid.
std::vector<std::vector<EdgeUpdate>> NetRestoringBatches(
    const DiGraph& graph) {
  std::vector<Edge> absent = AbsentEdges(graph, 3);
  std::vector<Edge> present = SampleExistingEdges(graph, 2, 777);
  EXPECT_GE(absent.size(), 3u);
  EXPECT_GE(present.size(), 2u);
  const Edge a0 = absent[0], a1 = absent[1], a2 = absent[2];
  const Edge e0 = present[0], e1 = present[1];
  return {
      {EdgeUpdate::Insert(a0.from, a0.to), EdgeUpdate::Insert(a1.from, a1.to),
       EdgeUpdate::Remove(e0.from, e0.to)},
      {EdgeUpdate::Remove(a1.from, a1.to), EdgeUpdate::Insert(a2.from, a2.to),
       EdgeUpdate::Remove(e1.from, e1.to), EdgeUpdate::Insert(e0.from, e0.to)},
      {EdgeUpdate::Remove(a0.from, a0.to), EdgeUpdate::Remove(a2.from, a2.to),
       EdgeUpdate::Insert(e1.from, e1.to)},
  };
}

std::string Serialized(ShardedEngine& engine) {
  std::string bytes;
  EXPECT_TRUE(engine.SaveTo(bytes));
  return bytes;
}

// The static serving forms with patchable label storage — exactly the
// backends Engine routes through the repair pipeline.
std::vector<std::string> PatchableBackends() {
  return {"compact", "frozen", "compressed"};
}

class RepairConformanceTest : public ::testing::TestWithParam<std::string> {};

// The acceptance oracle of the repair pipeline: after Drain(), a repaired
// index serializes byte-identical to a sequential from-scratch build, for
// every shard count, sync and async alike.
TEST_P(RepairConformanceTest, ByteIdentityAfterDrainAcrossShards) {
  const std::string& backend = GetParam();
  DiGraph graph = RandomGraph(50, 2.5, 61);
  std::vector<std::vector<EdgeUpdate>> batches = NetRestoringBatches(graph);
  for (uint32_t shards : {1u, 2u, 4u}) {
    for (bool async : {false, true}) {
      SCOPED_TRACE(backend + " shards=" + std::to_string(shards) +
                   (async ? " async" : " sync"));
      ShardedEngineOptions options;
      options.backend = backend;
      options.num_shards = shards;
      options.async_updates = async;
      options.repair.enabled = true;
      ShardedEngine repaired(options);
      ASSERT_TRUE(repaired.Build(graph));
      for (const std::vector<EdgeUpdate>& batch : batches) {
        repaired.ApplyUpdates(batch);
      }
      repaired.Drain();
      // The batches landed through the repair pipeline, not silently via
      // the legacy rebuild path.
      RepairStats stats = repaired.RepairStatsTotal();
      EXPECT_GT(stats.patches + stats.rebuilds, 0u);

      // From-scratch oracle on the (restored) graph, repair disabled — the
      // plain sequential build path.
      ShardedEngineOptions oracle_options = options;
      oracle_options.repair.enabled = false;
      ShardedEngine oracle(oracle_options);
      ASSERT_TRUE(oracle.Build(graph));
      EXPECT_EQ(Serialized(repaired), Serialized(oracle));
      EXPECT_EQ(repaired.QueryAll(), BfsReference(graph));
    }
  }
}

// Label-sliced shards: patch runs for unowned vertices are filtered out
// before application, so a repaired sliced shard stays byte-identical to a
// freshly built-and-sliced one. Arena backends only (the ones that slice).
TEST_P(RepairConformanceTest, SlicedShardsStayByteIdentical) {
  const std::string& backend = GetParam();
  if (backend == "compact") GTEST_SKIP() << "compact does not slice";
  DiGraph graph = RandomGraph(50, 2.5, 62);
  std::vector<std::vector<EdgeUpdate>> batches = NetRestoringBatches(graph);
  ShardedEngineOptions options;
  options.backend = backend;
  options.num_shards = 2;
  options.slice_labels = true;
  options.repair.enabled = true;
  ShardedEngine repaired(options);
  ASSERT_TRUE(repaired.Build(graph));
  for (const std::vector<EdgeUpdate>& batch : batches) {
    repaired.ApplyUpdates(batch);
  }
  repaired.Drain();
  EXPECT_GT(repaired.RepairStatsTotal().patches, 0u);

  ShardedEngineOptions oracle_options = options;
  oracle_options.repair.enabled = false;
  ShardedEngine oracle(oracle_options);
  ASSERT_TRUE(oracle.Build(graph));
  EXPECT_EQ(Serialized(repaired), Serialized(oracle));
  EXPECT_EQ(repaired.QueryAll(), BfsReference(graph));
}

// A sequence that does NOT restore the initial graph: the rebuild oracle
// would re-derive its ordering from the mutated graph, so the byte oracle
// here is the always-derive twin — same pinned ordering, every batch forced
// through the shadow-rebuild + derive path (rebuild_threshold = 0), no
// patches involved. Patching and deriving must produce the same bytes.
TEST_P(RepairConformanceTest, NonRestoringSequenceMatchesAlwaysDeriveTwin) {
  const std::string& backend = GetParam();
  DiGraph graph = RandomGraph(50, 2.5, 63);
  std::vector<std::vector<EdgeUpdate>> batches = NetRestoringBatches(graph);
  batches.pop_back();  // drop the restoring tail: net change remains
  DiGraph mutated = graph;
  for (const std::vector<EdgeUpdate>& batch : batches) {
    for (const EdgeUpdate& update : batch) {
      if (update.kind == UpdateKind::kInsert) {
        mutated.AddEdge(update.edge.from, update.edge.to);
      } else {
        mutated.RemoveEdge(update.edge.from, update.edge.to);
      }
    }
  }

  EngineOptions patch_options;
  patch_options.backend = backend;
  patch_options.repair.enabled = true;
  Engine patching(patch_options);
  ASSERT_TRUE(patching.Build(graph));
  ASSERT_TRUE(patching.repair_active());

  EngineOptions derive_options = patch_options;
  derive_options.repair.rebuild_threshold = 0.0;  // always rebuild + derive
  Engine deriving(derive_options);
  ASSERT_TRUE(deriving.Build(graph));

  for (const std::vector<EdgeUpdate>& batch : batches) {
    EXPECT_EQ(patching.ApplyUpdates(batch), deriving.ApplyUpdates(batch));
  }
  EXPECT_GT(patching.repair_stats().patches, 0u);
  EXPECT_EQ(deriving.repair_stats().patches, 0u);
  EXPECT_GT(deriving.repair_stats().rebuilds, 0u);

  std::string patched_bytes, derived_bytes;
  ASSERT_TRUE(patching.SaveTo(patched_bytes));
  ASSERT_TRUE(deriving.SaveTo(derived_bytes));
  EXPECT_EQ(patched_bytes, derived_bytes);
  EXPECT_EQ(patching.QueryAll(), BfsReference(mutated));
}

// The patch budgets only pick between "patch" and "derive" — the resulting
// bytes are the same either way. max_repair_hubs = 1 forces every batch to
// derive.
TEST_P(RepairConformanceTest, BudgetKnobsChangeHowNotWhat) {
  const std::string& backend = GetParam();
  DiGraph graph = RandomGraph(50, 2.5, 64);
  std::vector<std::vector<EdgeUpdate>> batches = NetRestoringBatches(graph);
  EngineOptions options;
  options.backend = backend;
  options.repair.enabled = true;
  options.repair.max_repair_hubs = 1;
  Engine engine(options);
  ASSERT_TRUE(engine.Build(graph));
  for (const std::vector<EdgeUpdate>& batch : batches) {
    engine.ApplyUpdates(batch);
  }
  EXPECT_EQ(engine.repair_stats().patches, 0u);
  EXPECT_GT(engine.repair_stats().rebuilds, 0u);

  EngineOptions oracle_options;
  oracle_options.backend = backend;
  Engine oracle(oracle_options);
  ASSERT_TRUE(oracle.Build(graph));
  std::string budgeted_bytes, oracle_bytes;
  ASSERT_TRUE(engine.SaveTo(budgeted_bytes));
  ASSERT_TRUE(oracle.SaveTo(oracle_bytes));
  EXPECT_EQ(budgeted_bytes, oracle_bytes);
}

// The BackendStats patch counters surface through Engine::Stats() (and
// from there the CLI): patched batches accumulate, a fresh Build resets.
TEST_P(RepairConformanceTest, PatchCountersSurfaceInStats) {
  const std::string& backend = GetParam();
  DiGraph graph = RandomGraph(50, 2.5, 65);
  std::vector<std::vector<EdgeUpdate>> batches = NetRestoringBatches(graph);
  EngineOptions options;
  options.backend = backend;
  options.repair.enabled = true;
  Engine engine(options);
  ASSERT_TRUE(engine.Build(graph));
  EXPECT_EQ(engine.Stats().patches_since_rebuild, 0u);
  for (const std::vector<EdgeUpdate>& batch : batches) {
    engine.ApplyUpdates(batch);
  }
  ASSERT_GT(engine.repair_stats().patches, 0u);
  BackendStats stats = engine.Stats();
  EXPECT_EQ(stats.patches_since_rebuild, engine.repair_stats().patches);
  EXPECT_GT(stats.patch_hubs_repaired, 0u);
  EXPECT_GT(stats.patch_label_bytes, 0u);
  EXPECT_EQ(stats.patch_hubs_repaired, engine.repair_stats().hubs_repaired);
  EXPECT_EQ(stats.patch_label_bytes, engine.repair_stats().label_bytes);

  // A from-scratch Build starts a new patch generation.
  ASSERT_TRUE(engine.Build(graph));
  EXPECT_EQ(engine.Stats().patches_since_rebuild, 0u);
  EXPECT_EQ(engine.repair_stats().patches, 0u);
}

// Injected patch failure on the synchronous path: the batch rolls back
// through the ordinary per-epoch protocol (graph restored, snapshot
// untouched, all verdicts kRejected) and the engine keeps repairing once
// the fault clears.
TEST_P(RepairConformanceTest, SyncPatchFailureRollsBack) {
  const std::string& backend = GetParam();
  DiGraph graph = RandomGraph(50, 2.5, 66);
  std::vector<std::vector<EdgeUpdate>> batches = NetRestoringBatches(graph);
  auto fail = std::make_shared<std::atomic<bool>>(true);
  EngineOptions options;
  options.backend = backend;
  options.repair.enabled = true;
  options.fail_patch_for_testing = [fail] { return fail->load(); };
  Engine engine(options);
  ASSERT_TRUE(engine.Build(graph));
  std::vector<CycleCount> before = engine.QueryAll();

  std::vector<UpdateVerdict> verdicts;
  EXPECT_EQ(engine.ApplyUpdates(batches[0], &verdicts), 0u);
  ASSERT_EQ(verdicts.size(), batches[0].size());
  for (UpdateVerdict verdict : verdicts) {
    EXPECT_EQ(verdict, UpdateVerdict::kRejected);
  }
  EXPECT_EQ(engine.QueryAll(), before);
  EXPECT_TRUE(engine.repair_active());

  // Healed: the same sequence lands and converges to the byte oracle.
  fail->store(false);
  for (const std::vector<EdgeUpdate>& batch : batches) {
    engine.ApplyUpdates(batch);
  }
  EngineOptions oracle_options;
  oracle_options.backend = backend;
  Engine oracle(oracle_options);
  ASSERT_TRUE(oracle.Build(graph));
  std::string repaired_bytes, oracle_bytes;
  ASSERT_TRUE(engine.SaveTo(repaired_bytes));
  ASSERT_TRUE(oracle.SaveTo(oracle_bytes));
  EXPECT_EQ(repaired_bytes, oracle_bytes);
}

INSTANTIATE_TEST_SUITE_P(PatchableBackends, RepairConformanceTest,
                         ::testing::ValuesIn(PatchableBackends()),
                         [](const auto& info) { return info.param; });

// Backends outside the repair envelope ignore the knob: dynamic backends
// keep updating in place, unpatchable static backends keep the legacy
// rebuild-and-swap, and a loaded engine (no retained graph) never repairs.
TEST(RepairConformanceFallback, NonPatchableBackendsIgnoreRepair) {
  DiGraph graph = RandomGraph(40, 2.0, 67);
  std::vector<std::vector<EdgeUpdate>> batches = NetRestoringBatches(graph);
  for (const char* backend : {"csc", "hpspc"}) {
    SCOPED_TRACE(backend);
    EngineOptions options;
    options.backend = backend;
    options.repair.enabled = true;
    options.build.maintain_inverted_index = true;
    Engine engine(options);
    ASSERT_TRUE(engine.Build(graph));
    EXPECT_FALSE(engine.repair_active());
    for (const std::vector<EdgeUpdate>& batch : batches) {
      engine.ApplyUpdates(batch);
    }
    EXPECT_EQ(engine.repair_stats().patches, 0u);
    EXPECT_EQ(engine.QueryAll(), BfsReference(graph));
  }
}

TEST(RepairConformanceFallback, LoadedEngineDoesNotRepair) {
  DiGraph graph = RandomGraph(40, 2.0, 68);
  EngineOptions options;
  options.backend = "frozen";
  options.repair.enabled = true;
  Engine built(options);
  ASSERT_TRUE(built.Build(graph));
  ASSERT_TRUE(built.repair_active());
  std::string payload;
  ASSERT_TRUE(built.SaveTo(payload));

  Engine loaded(options);
  ASSERT_TRUE(loaded.LoadFrom(payload));
  EXPECT_FALSE(loaded.repair_active());
  // No retained graph: static updates report kNoGraph, exactly as before.
  std::vector<UpdateVerdict> verdicts;
  EXPECT_EQ(loaded.ApplyUpdates({EdgeUpdate::Insert(0, 1)}, &verdicts), 0u);
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_EQ(verdicts[0], UpdateVerdict::kNoGraph);
}

}  // namespace
}  // namespace csc
