// End-to-end integration of the post-paper stack: a temporal stream is
// replayed through batch maintenance, the resulting index is persisted with
// a checksum, reloaded, frozen, compressed, screened (sequential and
// parallel), trend-tracked and rendered — with every stage cross-checked
// against the BFS oracle on the reference window graph.
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "baseline/bfs_cycle.h"
#include "csc/csc_index.h"
#include "csc/girth.h"
#include "csc/index_io.h"
#include "csc/screening.h"
#include "csc/trending.h"
#include "dynamic/batch.h"
#include "graph/dot_export.h"
#include "graph/ordering.h"
#include "graph/scc.h"
#include "graph/subgraph.h"
#include "labeling/compressed.h"
#include "tests/test_util.h"
#include "util/thread_pool.h"
#include "workload/temporal_stream.h"

namespace csc {
namespace {

TEST(ServingStackTest, StreamToPersistedServingTier) {
  // 1. Stream: replay half of a generated graph's arrivals into a live
  //    index through batch maintenance.
  DiGraph base = RandomGraph(60, 3.0, 314);
  std::vector<TemporalEdge> arrivals = ArrivalsFromGraph(base, 15);
  const uint64_t window = arrivals.size();  // nothing expires in this phase
  std::vector<StreamEvent> events = SlidingWindowEvents(arrivals, window);

  CscIndex::Options build_options;
  build_options.maintain_inverted_index = true;
  DiGraph empty(base.num_vertices());
  CscIndex index =
      CscIndex::Build(empty, DegreeOrdering(empty), build_options);

  BatchOptions batch_options;
  batch_options.strategy = MaintenanceStrategy::kMinimality;
  batch_options.rebuild_threshold = 10.0;

  TrendTracker tracker(5);
  uint64_t half_time = arrivals.size() / 2;
  size_t next = 0;
  for (uint64_t t = 10; t <= half_time; t += 10) {
    std::vector<EdgeUpdate> tick;
    while (next < events.size() && events[next].time <= t) {
      tick.push_back(events[next].update);
      ++next;
    }
    ApplyUpdates(index, tick, batch_options);
    tracker.Observe(TopKByCycleCount(index, kInfDist, 5));
  }
  DiGraph reference =
      GraphAtTime(base.num_vertices(), events, (half_time / 10) * 10);

  // 2. Persist with checksum, reload.
  std::string path = ::testing::TempDir() + "serving_stack.idx";
  CompactIndex compact = CompactIndex::FromIndex(index);
  ASSERT_TRUE(SaveIndexToFile(compact, path));
  IndexLoadResult loaded = LoadIndexFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  std::remove(path.c_str());

  // 3. Freeze + compress the reloaded index; verify every form against the
  //    oracle on the reference graph.
  FrozenIndex frozen = FrozenIndex::FromCompact(*loaded.index);
  CompressedIndex compressed = CompressedIndex::FromCompact(*loaded.index);
  SccResult scc = ComputeScc(reference);
  BfsCycleCounter oracle(reference);
  for (Vertex v = 0; v < reference.num_vertices(); ++v) {
    CycleCount truth = oracle.CountCycles(v);
    ASSERT_EQ(index.Query(v), truth) << "live index, vertex " << v;
    ASSERT_EQ(loaded.index->Query(v), truth) << "reloaded, vertex " << v;
    ASSERT_EQ(frozen.Query(v), truth) << "frozen, vertex " << v;
    ASSERT_EQ(compressed.Query(v), truth) << "compressed, vertex " << v;
    ASSERT_EQ(truth.count > 0, scc.OnCycle(v)) << "SCC filter, vertex " << v;
  }

  // 4. Screening: sequential == parallel, and consistent with the girth.
  ThreadPool pool(3);
  std::vector<ScreeningHit> hits = TopKByCycleCount(frozen, kInfDist, 8);
  EXPECT_EQ(TopKByCycleCount(frozen, kInfDist, 8, pool), hits);
  GirthInfo girth = ComputeGirth(frozen);
  if (!hits.empty()) {
    EXPECT_GE(hits.front().cycles.length, girth.girth);
  }

  // 5. Case-study rendering of the top hit parses as non-empty DOT.
  if (!hits.empty()) {
    Subgraph sub = ShortestCycleSubgraph(reference, hits.front().vertex);
    ASSERT_GT(sub.graph.num_vertices(), 0u);
    std::string dot = RenderCycleStudyDot(
        sub, [&](Vertex v) { return frozen.Query(v); });
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    EXPECT_NE(dot.find("->"), std::string::npos);
  }

  // 6. The trend tracker observed every tick.
  EXPECT_GT(tracker.ticks_observed(), 0u);
  EXPECT_EQ(tracker.current(), TopKByCycleCount(index, kInfDist, 5));
}

}  // namespace
}  // namespace csc
