// Direct unit tests for CLEAN_LABEL (Algorithm 8): redundant entries are
// removed, fresh entries survive, and inverted indexes stay in sync.
#include "dynamic/clean.h"

#include <gtest/gtest.h>

#include "baseline/bfs_cycle.h"
#include "dynamic/incremental.h"
#include "graph/bipartite.h"
#include "workload/update_workload.h"
#include "tests/test_util.h"

namespace csc {
namespace {

// Count label entries whose stored distance exceeds the live 2-hop distance
// (the redundancy definition, Definition V.2).
uint64_t CountRedundantEntries(const CscIndex& index) {
  uint64_t redundant = 0;
  const auto& order = index.bipartite_order();
  for (Vertex v = 0; v < index.bipartite_graph().num_vertices(); ++v) {
    for (const LabelEntry& e : index.labeling().in[v].entries()) {
      Vertex hub = order.rank_to_vertex[e.hub()];
      if (e.dist() > index.BipartiteQuery(hub, v).dist) ++redundant;
    }
    for (const LabelEntry& e : index.labeling().out[v].entries()) {
      Vertex hub = order.rank_to_vertex[e.hub()];
      if (e.dist() > index.BipartiteQuery(v, hub).dist) ++redundant;
    }
  }
  return redundant;
}

TEST(CleanTest, FreshIndexHasNoRedundantEntries) {
  DiGraph g = RandomGraph(40, 2.5, 7);
  CscIndex index = CscIndex::Build(g, DegreeOrdering(g));
  EXPECT_EQ(CountRedundantEntries(index), 0u);
}

// A graph where inserting (2, 3) strands a stale entry: the old h -> w path
// (1 -> 5 -> 6 -> 7 -> 8 -> 4, hub h = 1) is overtaken by the new path
// 1 -> 0 -> 2 -> 3 -> 4, whose prefix is covered by the higher-ranked
// vertex 0 — so hub 1 is never replayed and its L_in(w) entry goes stale.
DiGraph StaleEntryGraph() {
  DiGraph g(11);
  g.AddEdge(1, 0);                  // h -> x
  g.AddEdge(0, 2);                  // x -> a
  g.AddEdge(0, 9);                  // degree padding: x must outrank h
  g.AddEdge(0, 10);
  g.AddEdge(3, 4);                  // b -> w
  g.AddEdge(1, 5);                  // the old detour h -> ... -> w
  g.AddEdge(5, 6);
  g.AddEdge(6, 7);
  g.AddEdge(7, 8);
  g.AddEdge(8, 4);
  return g;
}

TEST(CleanTest, RedundancyStrategyAccumulatesStaleEntries) {
  DiGraph g = StaleEntryGraph();
  CscIndex index = CscIndex::Build(g, DegreeOrdering(g));
  ASSERT_TRUE(InsertEdge(index, 2, 3, MaintenanceStrategy::kRedundancy));
  EXPECT_GT(CountRedundantEntries(index), 0u);
  // Stale entries are harmless: the query still matches BFS ground truth.
  g.AddEdge(2, 3);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(index.Query(v), BfsCountCycles(g, v)) << "vertex " << v;
  }
}

TEST(CleanTest, MinimalityStrategyLeavesNoRedundantEntries) {
  DiGraph g = StaleEntryGraph();
  CscIndex index = CscIndex::Build(g, DegreeOrdering(g));
  ASSERT_TRUE(InsertEdge(index, 2, 3, MaintenanceStrategy::kMinimality));
  EXPECT_EQ(CountRedundantEntries(index), 0u);
}

TEST(CleanTest, CleaningKeepsInvertedIndexConsistent) {
  DiGraph g = RandomGraph(30, 2.0, 17);
  CscIndex index = CscIndex::Build(g, DegreeOrdering(g));
  index.EnsureInvertedIndexes();
  for (const Edge& e : SampleNewEdges(g, 10, 18)) {
    ASSERT_TRUE(
        InsertEdge(index, e.from, e.to, MaintenanceStrategy::kMinimality));
  }
  uint64_t in_entries = 0, out_entries = 0;
  for (Vertex v = 0; v < index.bipartite_graph().num_vertices(); ++v) {
    in_entries += index.labeling().in[v].size();
    out_entries += index.labeling().out[v].size();
  }
  EXPECT_EQ(index.inv_in().TotalEntries(), in_entries);
  EXPECT_EQ(index.inv_out().TotalEntries(), out_entries);
  // Spot-check membership: every in-label entry is registered under its hub.
  const auto& order = index.bipartite_order();
  for (Vertex v = 0; v < index.bipartite_graph().num_vertices(); ++v) {
    for (const LabelEntry& e : index.labeling().in[v].entries()) {
      EXPECT_TRUE(index.inv_in().Vertices(e.hub()).count(v))
          << "hub rank " << e.hub() << " vertex " << v;
    }
    (void)order;
  }
}

TEST(CleanTest, FullSweepRestoresMinimalityAfterRedundantUpdates) {
  // Accumulate stale entries with redundancy-mode inserts, then run the
  // cleaning pass over every vertex: all redundancy must disappear while
  // every query answer is preserved.
  DiGraph g = RandomGraph(25, 2.0, 23);
  CscIndex index = CscIndex::Build(g, DegreeOrdering(g));
  for (const Edge& e : SampleNewEdges(g, 12, 24)) {
    ASSERT_TRUE(
        InsertEdge(index, e.from, e.to, MaintenanceStrategy::kRedundancy));
    ASSERT_TRUE(g.AddEdge(e.from, e.to));
  }
  std::vector<CycleCount> before(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) before[v] = index.Query(v);

  index.EnsureInvertedIndexes();
  UpdateStats stats;
  for (Vertex v = 0; v < index.bipartite_graph().num_vertices(); ++v) {
    CleanAfterInLabelChange(index, v, stats);
    CleanAfterOutLabelChange(index, v, stats);
  }
  EXPECT_EQ(CountRedundantEntries(index), 0u);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(index.Query(v), before[v]) << "vertex " << v;
  }
}

}  // namespace
}  // namespace csc
