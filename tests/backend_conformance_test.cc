// Backend conformance: every CycleIndex implementation must answer the same
// query/update scenario identically (the BFS baseline recomputed from
// scratch is the ground truth). New backends get this coverage for free by
// registering in AllBackendNames().
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "baseline/bfs_cycle.h"
#include "core/cycle_index.h"
#include "csc/girth.h"
#include "graph/digraph.h"
#include "tests/test_util.h"

namespace csc {
namespace {

class BackendConformanceTest : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<CycleIndex> Make() {
    std::unique_ptr<CycleIndex> backend = MakeBackend(GetParam());
    EXPECT_NE(backend, nullptr) << "unregistered backend " << GetParam();
    return backend;
  }

  static void ExpectMatchesBfs(CycleIndex& backend, const DiGraph& graph,
                               const char* when) {
    ASSERT_EQ(backend.num_vertices(), graph.num_vertices()) << when;
    BfsCycleCounter reference(graph);
    for (Vertex v = 0; v < graph.num_vertices(); ++v) {
      EXPECT_EQ(backend.CountShortestCycles(v), reference.CountCycles(v))
          << when << ": backend " << backend.name() << ", vertex " << v;
    }
  }
};

TEST_P(BackendConformanceTest, RegistryNameMatches) {
  auto backend = Make();
  EXPECT_EQ(backend->name(), GetParam());
  BackendStats stats = backend->Stats();
  EXPECT_EQ(stats.name, GetParam());
  EXPECT_EQ(stats.supports_updates, backend->supports_updates());
  EXPECT_EQ(stats.supports_save, backend->supports_save());
}

TEST_P(BackendConformanceTest, AnswersMatchBfsOnFigure2) {
  auto backend = Make();
  DiGraph graph = Figure2Graph();
  backend->Build(graph);
  ExpectMatchesBfs(*backend, graph, "figure2");
  // The paper's worked example: SCCnt(v7) = 3 shortest cycles of length 6.
  CycleCount v7 = backend->CountShortestCycles(6);
  EXPECT_EQ(v7.count, 3u);
  EXPECT_EQ(v7.length, 6u);
  // Out-of-range queries are empty answers, not crashes.
  EXPECT_EQ(backend->CountShortestCycles(10), CycleCount{});
  EXPECT_EQ(backend->CountShortestCycles(kNoVertex), CycleCount{});
}

TEST_P(BackendConformanceTest, AnswersMatchBfsOnRandomGraphs) {
  auto backend = Make();
  for (uint64_t seed : {1u, 2u}) {
    DiGraph graph = RandomGraph(60, 2.5, seed);
    backend->Build(graph);
    ExpectMatchesBfs(*backend, graph, "random");
  }
}

TEST_P(BackendConformanceTest, GirthMatchesSweep) {
  auto backend = Make();
  DiGraph graph = RandomGraph(50, 2.0, 42);
  backend->Build(graph);
  BfsCycleCounter reference(graph);
  GirthInfo expected = ComputeGirth(
      graph.num_vertices(), [&](Vertex v) { return reference.CountCycles(v); });
  GirthInfo actual = backend->Girth();
  EXPECT_EQ(actual.girth, expected.girth);
  EXPECT_EQ(actual.num_girth_vertices, expected.num_girth_vertices);
  EXPECT_EQ(actual.example_vertex, expected.example_vertex);
}

// The shared update scenario: close a 2-cycle, retract it, then grow a new
// cycle elsewhere. Backends with in-place maintenance repair themselves;
// static backends must report kUnsupported (never silently wrong answers)
// and stay correct after an explicit rebuild.
TEST_P(BackendConformanceTest, SharedUpdateScenario) {
  auto backend = Make();
  DiGraph graph = Figure2Graph();
  backend->Build(graph);

  const std::vector<std::pair<bool, Edge>> scenario = {
      {true, {7, 6}},   // insert: closes a 2-cycle at the paper's v7/v8
      {false, {7, 6}},  // remove it again
      {true, {6, 0}},   // insert: a shortcut creating shorter cycles
      {false, {0, 2}},  // remove an original edge
  };

  for (const auto& [insert, edge] : scenario) {
    CycleIndex::UpdateResult result =
        insert ? backend->InsertEdge(edge.from, edge.to)
               : backend->DeleteEdge(edge.from, edge.to);
    if (backend->supports_updates()) {
      ASSERT_EQ(result, CycleIndex::UpdateResult::kApplied);
      bool ok = insert ? graph.AddEdge(edge.from, edge.to)
                       : graph.RemoveEdge(edge.from, edge.to);
      ASSERT_TRUE(ok);
      ExpectMatchesBfs(*backend, graph, "after in-place update");
    } else {
      ASSERT_EQ(result, CycleIndex::UpdateResult::kUnsupported);
      bool ok = insert ? graph.AddEdge(edge.from, edge.to)
                       : graph.RemoveEdge(edge.from, edge.to);
      ASSERT_TRUE(ok);
      backend->Build(graph);  // static form: rebuild is the update path
      ExpectMatchesBfs(*backend, graph, "after rebuild");
    }
  }

  if (backend->supports_updates()) {
    // No-op updates are rejected, not applied.
    EXPECT_EQ(backend->InsertEdge(6, 7), CycleIndex::UpdateResult::kRejected)
        << "edge already present";
    EXPECT_EQ(backend->DeleteEdge(0, 2), CycleIndex::UpdateResult::kRejected)
        << "edge already absent";
    EXPECT_EQ(backend->InsertEdge(3, 3), CycleIndex::UpdateResult::kRejected)
        << "self-loop";
  }
}

// Updates addressing out-of-range vertices are rejected — never applied,
// never a crash — and leave the index untouched, on every backend that
// supports updates. The serving Engine relies on this agreeing with the
// DiGraph-based static path (which rejects the same endpoints), so the
// in-place and rebuild update paths count "applied" identically.
TEST_P(BackendConformanceTest, OutOfRangeUpdatesRejectedUniformly) {
  auto backend = Make();
  DiGraph graph = Figure2Graph();
  backend->Build(graph);
  if (!backend->supports_updates()) {
    EXPECT_EQ(backend->InsertEdge(100, 0), CycleIndex::UpdateResult::kUnsupported);
    EXPECT_EQ(backend->DeleteEdge(0, 100), CycleIndex::UpdateResult::kUnsupported);
    return;
  }
  const Vertex n = graph.num_vertices();
  EXPECT_EQ(backend->InsertEdge(n, 0), CycleIndex::UpdateResult::kRejected);
  EXPECT_EQ(backend->InsertEdge(0, n), CycleIndex::UpdateResult::kRejected);
  EXPECT_EQ(backend->InsertEdge(kNoVertex, kNoVertex),
            CycleIndex::UpdateResult::kRejected);
  EXPECT_EQ(backend->DeleteEdge(n, 0), CycleIndex::UpdateResult::kRejected);
  EXPECT_EQ(backend->DeleteEdge(0, n), CycleIndex::UpdateResult::kRejected);
  EXPECT_EQ(backend->DeleteEdge(kNoVertex, 0),
            CycleIndex::UpdateResult::kRejected);
  ExpectMatchesBfs(*backend, graph, "after out-of-range updates");
}

TEST_P(BackendConformanceTest, SaveLoadRoundTripsThroughInterface) {
  auto backend = Make();
  DiGraph graph = RandomGraph(40, 2.0, 9);
  backend->Build(graph);
  std::string bytes;
  if (!backend->SaveTo(bytes)) {
    EXPECT_FALSE(backend->supports_save());
    return;
  }
  EXPECT_TRUE(backend->supports_save());
  // The compact interchange payload (saved by csc/cached/compact) loads
  // into every flat serving form; the flat forms save their native arena
  // payloads, which round-trip through their own backend.
  std::vector<std::string> loaders;
  if (GetParam() == "frozen" || GetParam() == "compressed") {
    loaders = {GetParam()};
  } else {
    loaders = {"compact", "frozen", "compressed"};
  }
  BfsCycleCounter reference(graph);
  for (const std::string& loader : loaders) {
    auto loaded = MakeBackend(loader);
    ASSERT_TRUE(loaded->LoadFrom(bytes))
        << backend->name() << " payload into " << loader;
    for (Vertex v = 0; v < graph.num_vertices(); ++v) {
      EXPECT_EQ(loaded->CountShortestCycles(v), reference.CountCycles(v))
          << loader << " vertex " << v;
    }
  }
  // Incompatible payloads are rejected cleanly, never half-loaded.
  if (GetParam() == "frozen") {
    EXPECT_FALSE(MakeBackend("compact")->LoadFrom(bytes));
    EXPECT_FALSE(MakeBackend("compressed")->LoadFrom(bytes));
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendConformanceTest,
                         ::testing::ValuesIn(AllBackendNames()),
                         [](const auto& info) { return info.param; });

TEST(BackendRegistryTest, UnknownNameReturnsNull) {
  EXPECT_EQ(MakeBackend("no-such-backend"), nullptr);
  EXPECT_EQ(MakeBackend(""), nullptr);
}

TEST(BackendRegistryTest, DefaultBackendIsRegistered) {
  EXPECT_NE(MakeBackend(kDefaultBackendName), nullptr);
}

// Minimality maintenance (Algorithm 8) through the interface: building with
// maintain_inverted_index makes "csc" apply updates with the cleaning
// strategy, exercising the inverted hub indexes.
TEST(BackendBuildOptionsTest, MinimalityMaintenanceStaysCorrect) {
  auto backend = MakeBackend("csc");
  DiGraph graph = Figure2Graph();
  CycleIndex::BuildOptions options;
  options.maintain_inverted_index = true;
  backend->Build(graph, options);
  ASSERT_EQ(backend->InsertEdge(7, 6), CycleIndex::UpdateResult::kApplied);
  graph.AddEdge(7, 6);
  ASSERT_EQ(backend->InsertEdge(6, 0), CycleIndex::UpdateResult::kApplied);
  graph.AddEdge(6, 0);
  BfsCycleCounter reference(graph);
  for (Vertex v = 0; v < graph.num_vertices(); ++v) {
    EXPECT_EQ(backend->CountShortestCycles(v), reference.CountCycles(v));
  }
}

TEST(BackendBuildOptionsTest, ReservedVerticesAttachViaInsertEdge) {
  auto backend = MakeBackend("csc");
  DiGraph graph = Figure2Graph();
  CycleIndex::BuildOptions options;
  options.reserve_vertices = 2;
  backend->Build(graph, options);
  EXPECT_EQ(backend->num_vertices(), 12u);
  // Attach vertex 10 on a detour of the main cycle: 9 -> 10 -> 0.
  ASSERT_EQ(backend->InsertEdge(9, 10), CycleIndex::UpdateResult::kApplied);
  ASSERT_EQ(backend->InsertEdge(10, 0), CycleIndex::UpdateResult::kApplied);
  graph.AddVertices(2);
  graph.AddEdge(9, 10);
  graph.AddEdge(10, 0);
  BfsCycleCounter reference(graph);
  for (Vertex v = 0; v < graph.num_vertices(); ++v) {
    EXPECT_EQ(backend->CountShortestCycles(v), reference.CountCycles(v));
  }
}

}  // namespace
}  // namespace csc
