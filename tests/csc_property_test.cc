// The load-bearing oracle-equivalence property (DESIGN.md §7): on randomized
// graphs from every generator family, CSC, HP-SPC and BFS-CYCLE agree on
// (shortest cycle length, count) for every vertex.
#include <gtest/gtest.h>

#include <tuple>

#include "baseline/bfs_cycle.h"
#include "csc/csc_index.h"
#include "graph/generators.h"
#include "hpspc/hpspc_index.h"
#include "tests/test_util.h"

namespace csc {
namespace {

enum class Family { kErdosRenyi, kPowerLaw, kSmallWorld, kMoneyLaundering };

std::string FamilyName(Family family) {
  switch (family) {
    case Family::kErdosRenyi:
      return "ErdosRenyi";
    case Family::kPowerLaw:
      return "PowerLaw";
    case Family::kSmallWorld:
      return "SmallWorld";
    case Family::kMoneyLaundering:
      return "MoneyLaundering";
  }
  return "?";
}

DiGraph MakeGraph(Family family, Vertex n, uint64_t seed) {
  switch (family) {
    case Family::kErdosRenyi:
      return GenerateErdosRenyi(n, static_cast<uint64_t>(2.5 * n), seed);
    case Family::kPowerLaw:
      return GeneratePreferentialAttachment(n, 2, 0.15, seed);
    case Family::kSmallWorld:
      return GenerateSmallWorld(n, 2, 0.2, seed);
    case Family::kMoneyLaundering: {
      MoneyLaunderingConfig cfg;
      cfg.num_background = n;
      cfg.num_rings = 3;
      cfg.routes_per_ring = 4;
      cfg.route_length = 3;
      return GenerateMoneyLaundering(cfg, seed).graph;
    }
  }
  return DiGraph();
}

using Param = std::tuple<Family, Vertex, uint64_t>;  // family, n, seed

class EngineEquivalenceTest : public ::testing::TestWithParam<Param> {};

TEST_P(EngineEquivalenceTest, AllEnginesAgreeOnEveryVertex) {
  auto [family, n, seed] = GetParam();
  DiGraph g = MakeGraph(family, n, seed);
  VertexOrdering order = DegreeOrdering(g);
  CscIndex csc_index = CscIndex::Build(g, order);
  HpSpcIndex hpspc_index = HpSpcIndex::Build(g, order);
  BfsCycleCounter bfs(g);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    CycleCount truth = bfs.CountCycles(v);
    ASSERT_EQ(csc_index.Query(v), truth)
        << FamilyName(family) << " n=" << n << " seed=" << seed
        << " vertex=" << v << " (CSC)";
    ASSERT_EQ(hpspc_index.CountCycles(v), truth)
        << FamilyName(family) << " n=" << n << " seed=" << seed
        << " vertex=" << v << " (HP-SPC)";
  }
}

INSTANTIATE_TEST_SUITE_P(
    SweepFamiliesSizesSeeds, EngineEquivalenceTest,
    ::testing::Combine(
        ::testing::Values(Family::kErdosRenyi, Family::kPowerLaw,
                          Family::kSmallWorld, Family::kMoneyLaundering),
        ::testing::Values<Vertex>(24, 60, 120),
        ::testing::Values<uint64_t>(1, 2, 3, 4)),
    [](const ::testing::TestParamInfo<Param>& info) {
      return FamilyName(std::get<0>(info.param)) + "_n" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

// Degenerate orderings must not break correctness: hub labeling is valid for
// ANY total order, so even an adversarially bad (identity / reversed) order
// has to produce exact answers.
class OrderingRobustnessTest : public ::testing::TestWithParam<bool> {};

TEST_P(OrderingRobustnessTest, ArbitraryOrderingsStayExact) {
  bool reversed = GetParam();
  DiGraph g = MakeGraph(Family::kErdosRenyi, 50, 99);
  std::vector<Vertex> perm(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    perm[v] = reversed ? g.num_vertices() - 1 - v : v;
  }
  CscIndex index = CscIndex::Build(g, OrderingFromPermutation(perm));
  BfsCycleCounter bfs(g);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(index.Query(v), bfs.CountCycles(v)) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(IdentityAndReversed, OrderingRobustnessTest,
                         ::testing::Bool());

// Denser graphs stress the counting paths (many equal-length shortest
// cycles) rather than the distance machinery.
TEST(DenseEquivalenceTest, DenseRandomGraphs) {
  for (uint64_t seed = 10; seed < 14; ++seed) {
    DiGraph g = GenerateErdosRenyi(30, 30 * 8, seed);
    CscIndex index = CscIndex::Build(g, DegreeOrdering(g));
    BfsCycleCounter bfs(g);
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(index.Query(v), bfs.CountCycles(v))
          << "seed " << seed << " vertex " << v;
    }
  }
}

}  // namespace
}  // namespace csc
