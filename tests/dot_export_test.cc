#include "graph/dot_export.h"

#include <string>

#include <gtest/gtest.h>

#include "csc/csc_index.h"
#include "graph/ordering.h"
#include "graph/subgraph.h"
#include "tests/test_util.h"

namespace csc {
namespace {

size_t CountOccurrences(const std::string& text, const std::string& needle) {
  size_t count = 0;
  for (size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(ToDotTest, EmitsHeaderAllVerticesAndAllEdges) {
  DiGraph graph = Figure2Graph();
  std::string dot = ToDot(graph);
  EXPECT_NE(dot.find("digraph csc {"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
  // One "->" per edge.
  EXPECT_EQ(CountOccurrences(dot, "->"), graph.num_edges());
  // Every vertex declared with a label.
  for (Vertex v = 0; v < graph.num_vertices(); ++v) {
    EXPECT_NE(dot.find("  " + std::to_string(v) + " [label=\"" +
                       std::to_string(v) + "\"];"),
              std::string::npos)
        << "vertex " << v;
  }
}

TEST(ToDotTest, CustomNameAndUnlabeled) {
  DiGraph graph(2);
  graph.AddEdge(0, 1);
  DotOptions options;
  options.graph_name = "payments";
  options.label_vertices = false;
  std::string dot = ToDot(graph, options);
  EXPECT_NE(dot.find("digraph payments {"), std::string::npos);
  EXPECT_NE(dot.find("[label=\"\"]"), std::string::npos);
}

TEST(ToDotTest, EmptyGraphIsValidDot) {
  std::string dot = ToDot(DiGraph());
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("}"), std::string::npos);
  EXPECT_EQ(CountOccurrences(dot, "->"), 0u);
}

TEST(RenderCycleStudyDotTest, UsesOriginalIdsAndStyles) {
  DiGraph graph = Figure2Graph();
  CscIndex index = CscIndex::Build(graph, DegreeOrdering(graph));
  Subgraph sub = ShortestCycleSubgraph(graph, 6);  // v7's shortest cycles
  ASSERT_GT(sub.graph.num_vertices(), 0u);

  std::string dot = RenderCycleStudyDot(
      sub, [&](Vertex v) { return index.Query(v); });
  // Node lines carry original vertex ids, size and gray fill.
  EXPECT_NE(dot.find("6 [label=\"6\""), std::string::npos);
  EXPECT_NE(dot.find("fillcolor=gray"), std::string::npos);
  EXPECT_NE(dot.find("width="), std::string::npos);
  EXPECT_EQ(CountOccurrences(dot, "->"), sub.graph.num_edges());
}

TEST(RenderCycleStudyDotTest, BiggestVertexHasLargestCount) {
  // Two reciprocal pairs sharing vertex 0: SCCnt(0) = 2, others 1. Vertex 0
  // must get the maximal width (1.60); the count-1 vertices something
  // strictly smaller.
  DiGraph graph(3);
  graph.AddEdge(0, 1);
  graph.AddEdge(1, 0);
  graph.AddEdge(0, 2);
  graph.AddEdge(2, 0);
  CscIndex index = CscIndex::Build(graph, DegreeOrdering(graph));
  ASSERT_EQ(index.Query(0).count, 2u);

  std::vector<Vertex> all = {0, 1, 2};
  Subgraph sub = InducedSubgraph(graph, all);
  std::string dot = RenderCycleStudyDot(
      sub, [&](Vertex v) { return index.Query(v); });
  EXPECT_NE(dot.find("0 [label=\"0\", width=1.60"), std::string::npos);
  EXPECT_EQ(dot.find("1 [label=\"1\", width=1.60"), std::string::npos);
}

TEST(RenderCycleStudyDotTest, EmptySubgraphRendersEmptyDigraph) {
  Subgraph empty;
  std::string dot =
      RenderCycleStudyDot(empty, [](Vertex) { return CycleCount{}; });
  EXPECT_NE(dot.find("digraph case_study {"), std::string::npos);
  EXPECT_EQ(CountOccurrences(dot, "->"), 0u);
}

}  // namespace
}  // namespace csc
