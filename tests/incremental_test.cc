#include "dynamic/incremental.h"

#include <gtest/gtest.h>

#include "baseline/bfs_cycle.h"
#include "csc/compact_index.h"
#include "graph/generators.h"
#include "tests/test_util.h"
#include "workload/update_workload.h"

namespace csc {
namespace {

// After maintenance, every vertex's query must match BFS on the live graph.
void ExpectMatchesBfs(const CscIndex& index, const DiGraph& graph,
                      const std::string& context) {
  BfsCycleCounter bfs(graph);
  for (Vertex v = 0; v < graph.num_vertices(); ++v) {
    ASSERT_EQ(index.Query(v), bfs.CountCycles(v))
        << context << " vertex " << v;
  }
}

TEST(IncrementalTest, RejectsInvalidInsertions) {
  DiGraph g = Figure2Graph();
  CscIndex index = CscIndex::Build(g, Figure2Ordering());
  EXPECT_FALSE(InsertEdge(index, 3, 3));    // self loop
  EXPECT_FALSE(InsertEdge(index, 0, 2));    // already present (v1->v3)
  EXPECT_FALSE(InsertEdge(index, 0, 100));  // out of range
  ExpectMatchesBfs(index, g, "untouched");
}

TEST(IncrementalTest, InsertCreatesShorterCycleFigure2) {
  // Insert v8 -> v7 (ids 7 -> 6): creates a 2-cycle at v7/v8.
  DiGraph g = Figure2Graph();
  CscIndex index = CscIndex::Build(g, Figure2Ordering());
  ASSERT_TRUE(InsertEdge(index, 7, 6));
  g.AddEdge(7, 6);
  EXPECT_EQ(index.Query(6), (CycleCount{2, 1}));
  EXPECT_EQ(index.Query(7), (CycleCount{2, 1}));
  ExpectMatchesBfs(index, g, "after v8->v7");
}

TEST(IncrementalTest, InsertAddsParallelShortestCycle) {
  // Insert v3 -> v7 (ids 2 -> 6): v1->v3->v7 opens a third length-6 cycle
  // through v1 and shortens nothing.
  DiGraph g = Figure2Graph();
  CscIndex index = CscIndex::Build(g, Figure2Ordering());
  ASSERT_TRUE(InsertEdge(index, 2, 6));
  g.AddEdge(2, 6);
  ExpectMatchesBfs(index, g, "after v3->v7");
  EXPECT_EQ(index.Query(0), (CycleCount{6, 3}));  // v1 now has 3
}

TEST(IncrementalTest, InsertIntoEmptyRegionConnectsComponents) {
  DiGraph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(3, 4);
  g.AddEdge(4, 5);
  CscIndex index = CscIndex::Build(g, DegreeOrdering(g));
  ASSERT_TRUE(InsertEdge(index, 2, 3));
  g.AddEdge(2, 3);
  ExpectMatchesBfs(index, g, "bridge");
  ASSERT_TRUE(InsertEdge(index, 5, 0));  // closes a 6-cycle
  g.AddEdge(5, 0);
  for (Vertex v = 0; v < 6; ++v) {
    EXPECT_EQ(index.Query(v), (CycleCount{6, 1}));
  }
}

TEST(IncrementalTest, SequenceOfInsertionsRedundancyStrategy) {
  DiGraph g = RandomGraph(40, 1.5, 21);
  CscIndex index = CscIndex::Build(g, DegreeOrdering(g));
  std::vector<Edge> additions = SampleNewEdges(g, 25, 22);
  ASSERT_GT(additions.size(), 10u);
  for (const Edge& e : additions) {
    ASSERT_TRUE(InsertEdge(index, e.from, e.to));
    ASSERT_TRUE(g.AddEdge(e.from, e.to));
    ExpectMatchesBfs(index, g, "redundancy insert");
  }
}

TEST(IncrementalTest, SequenceOfInsertionsMinimalityStrategy) {
  DiGraph g = RandomGraph(40, 1.5, 31);
  CscIndex index = CscIndex::Build(g, DegreeOrdering(g));
  std::vector<Edge> additions = SampleNewEdges(g, 20, 32);
  for (const Edge& e : additions) {
    ASSERT_TRUE(
        InsertEdge(index, e.from, e.to, MaintenanceStrategy::kMinimality));
    ASSERT_TRUE(g.AddEdge(e.from, e.to));
    ExpectMatchesBfs(index, g, "minimality insert");
  }
}

TEST(IncrementalTest, MinimalityMatchesFreshBuildExactly) {
  // Under the minimality strategy the maintained label sets must be
  // identical to a from-scratch build of the updated graph (Theorem V.3:
  // the minimal labeling under a fixed order is unique).
  DiGraph g = RandomGraph(35, 1.8, 41);
  VertexOrdering order = DegreeOrdering(g);
  CscIndex index = CscIndex::Build(g, order);
  std::vector<Edge> additions = SampleNewEdges(g, 12, 42);
  for (const Edge& e : additions) {
    ASSERT_TRUE(
        InsertEdge(index, e.from, e.to, MaintenanceStrategy::kMinimality));
    ASSERT_TRUE(g.AddEdge(e.from, e.to));
  }
  // Note: the same *original* ordering is reused; a fresh DegreeOrdering
  // would rank the grown degrees differently.
  CscIndex fresh = CscIndex::Build(g, order);
  EXPECT_EQ(index.labeling(), fresh.labeling());
}

TEST(IncrementalTest, RedundancyNeverShrinksButStaysCorrect) {
  DiGraph g = RandomGraph(30, 2.0, 51);
  VertexOrdering order = DegreeOrdering(g);
  CscIndex index = CscIndex::Build(g, order);
  uint64_t previous = index.TotalEntries();
  for (const Edge& e : SampleNewEdges(g, 10, 52)) {
    UpdateStats stats;
    ASSERT_TRUE(InsertEdge(index, e.from, e.to,
                           MaintenanceStrategy::kRedundancy, &stats));
    ASSERT_TRUE(g.AddEdge(e.from, e.to));
    EXPECT_EQ(stats.entries_removed, 0u);
    EXPECT_GE(index.TotalEntries(), previous);
    previous = index.TotalEntries();
  }
  ExpectMatchesBfs(index, g, "final");
}

TEST(IncrementalTest, StatsReportWork) {
  DiGraph g = Figure2Graph();
  CscIndex index = CscIndex::Build(g, Figure2Ordering());
  UpdateStats stats;
  ASSERT_TRUE(InsertEdge(index, 7, 6, MaintenanceStrategy::kRedundancy,
                         &stats));
  EXPECT_GT(stats.hubs_processed, 0u);
  EXPECT_GT(stats.vertices_visited, 0u);
  EXPECT_GT(stats.entries_added + stats.entries_updated, 0u);
  EXPECT_GT(stats.seconds, 0.0);
}

TEST(IncrementalTest, UpdatedIndexServesCompactQueries) {
  DiGraph g = RandomGraph(40, 2.0, 61);
  CscIndex index = CscIndex::Build(g, DegreeOrdering(g));
  for (const Edge& e : SampleNewEdges(g, 8, 62)) {
    ASSERT_TRUE(InsertEdge(index, e.from, e.to));
    ASSERT_TRUE(g.AddEdge(e.from, e.to));
  }
  CompactIndex compact = CompactIndex::FromIndex(index);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(compact.Query(v), index.Query(v));
  }
}

}  // namespace
}  // namespace csc
