#include "graph/generators.h"

#include <gtest/gtest.h>

#include <set>

#include "baseline/bfs_cycle.h"

namespace csc {
namespace {

void ExpectSimpleDirected(const DiGraph& g) {
  std::set<std::pair<Vertex, Vertex>> seen;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    for (Vertex w : g.OutNeighbors(v)) {
      ASSERT_NE(v, w) << "self-loop at " << v;
      ASSERT_TRUE(seen.emplace(v, w).second)
          << "duplicate edge " << v << "->" << w;
    }
  }
}

TEST(ErdosRenyiTest, ProducesRequestedEdgeCount) {
  DiGraph g = GenerateErdosRenyi(100, 400, 1);
  EXPECT_EQ(g.num_vertices(), 100u);
  EXPECT_EQ(g.num_edges(), 400u);
  ExpectSimpleDirected(g);
}

TEST(ErdosRenyiTest, DeterministicPerSeed) {
  EXPECT_EQ(GenerateErdosRenyi(50, 120, 7).Edges(),
            GenerateErdosRenyi(50, 120, 7).Edges());
  EXPECT_NE(GenerateErdosRenyi(50, 120, 7).Edges(),
            GenerateErdosRenyi(50, 120, 8).Edges());
}

TEST(ErdosRenyiTest, ClampsToMaxPossibleEdges) {
  DiGraph g = GenerateErdosRenyi(5, 1000, 3);
  EXPECT_EQ(g.num_edges(), 20u);  // 5 * 4 directed pairs
}

TEST(PreferentialAttachmentTest, BasicShape) {
  DiGraph g = GeneratePreferentialAttachment(2000, 2, 0.1, 11);
  EXPECT_EQ(g.num_vertices(), 2000u);
  EXPECT_GT(g.num_edges(), 2000u);
  ExpectSimpleDirected(g);
}

TEST(PreferentialAttachmentTest, DegreeDistributionIsSkewed) {
  DiGraph g = GeneratePreferentialAttachment(5000, 2, 0.1, 13);
  size_t max_degree = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    max_degree = std::max(max_degree, g.Degree(v));
  }
  double avg_degree = 2.0 * g.num_edges() / g.num_vertices();
  // Power-law-ish: the hub's degree dwarfs the average.
  EXPECT_GT(max_degree, 10 * avg_degree);
}

TEST(PreferentialAttachmentTest, ContainsCycles) {
  DiGraph g = GeneratePreferentialAttachment(500, 2, 0.2, 17);
  size_t with_cycles = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (BfsCountCycles(g, v).count > 0) ++with_cycles;
  }
  EXPECT_GT(with_cycles, g.num_vertices() / 10);
}

TEST(SmallWorldTest, LatticeWithoutRewiringIsRegular) {
  DiGraph g = GenerateSmallWorld(100, 3, 0.0, 19);
  EXPECT_EQ(g.num_edges(), 300u);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(g.OutDegree(v), 3u);
    EXPECT_TRUE(g.HasEdge(v, (v + 1) % 100));
  }
}

TEST(SmallWorldTest, RewiringKeepsGraphSimple) {
  DiGraph g = GenerateSmallWorld(1000, 4, 0.3, 23);
  ExpectSimpleDirected(g);
  EXPECT_GT(g.num_edges(), 3500u);
}

TEST(SmallWorldTest, RingProvidesCyclesThroughEveryVertex) {
  DiGraph g = GenerateSmallWorld(60, 2, 0.0, 29);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_GT(BfsCountCycles(g, v).count, 0u);
  }
}

TEST(RmatTest, ProducesRequestedShape) {
  RmatConfig config;
  config.scale = 10;
  config.num_edges = 4000;
  DiGraph g = GenerateRmat(config, 7);
  EXPECT_EQ(g.num_vertices(), 1024u);
  EXPECT_EQ(g.num_edges(), 4000u);
  ExpectSimpleDirected(g);
}

TEST(RmatTest, DeterministicAndSeedSensitive) {
  RmatConfig config;
  config.scale = 8;
  config.num_edges = 1000;
  EXPECT_EQ(GenerateRmat(config, 1).Edges(), GenerateRmat(config, 1).Edges());
  EXPECT_NE(GenerateRmat(config, 1).Edges(), GenerateRmat(config, 2).Edges());
}

TEST(RmatTest, SkewedQuadrantsProduceSkewedDegrees) {
  RmatConfig config;
  config.scale = 12;
  config.num_edges = 20000;
  DiGraph g = GenerateRmat(config, 9);
  size_t max_degree = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    max_degree = std::max(max_degree, g.Degree(v));
  }
  double avg = 2.0 * g.num_edges() / g.num_vertices();
  EXPECT_GT(max_degree, 8 * avg);
}

TEST(MoneyLaunderingTest, PlantedRingCountsAreExact) {
  MoneyLaunderingConfig cfg;
  cfg.num_background = 300;
  cfg.num_rings = 3;
  cfg.routes_per_ring = 5;
  cfg.route_length = 3;
  MoneyLaunderingGraph ml = GenerateMoneyLaundering(cfg, 31);
  ASSERT_EQ(ml.criminal_accounts.size(), 3u);
  for (Vertex criminal : ml.criminal_accounts) {
    CycleCount cc = BfsCountCycles(ml.graph, criminal);
    // Each route is one shortest cycle of length route_length + 1; criminal
    // accounts have no other outgoing routes, so the counts are exact.
    EXPECT_EQ(cc.length, cfg.route_length + 1);
    EXPECT_EQ(cc.count, cfg.routes_per_ring);
  }
}

TEST(MoneyLaunderingTest, CriminalsStandOutFromBackground) {
  MoneyLaunderingConfig cfg;
  cfg.num_background = 500;
  cfg.num_rings = 2;
  cfg.routes_per_ring = 8;
  cfg.route_length = 3;
  MoneyLaunderingGraph ml = GenerateMoneyLaundering(cfg, 37);
  uint64_t max_background = 0;
  for (Vertex v = 0; v < cfg.num_background; ++v) {
    CycleCount cc = BfsCountCycles(ml.graph, v);
    if (cc.length == cfg.route_length + 1) {
      max_background = std::max<uint64_t>(max_background, cc.count);
    }
  }
  for (Vertex criminal : ml.criminal_accounts) {
    EXPECT_GT(BfsCountCycles(ml.graph, criminal).count, max_background);
  }
}

}  // namespace
}  // namespace csc
