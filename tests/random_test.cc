#include "util/random.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace csc {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.Next() == b.Next());
  EXPECT_LT(equal, 4);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextBoundedOneIsAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, NextBoundedCoversAllResidues) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double x = rng.NextDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  // Mean of 10k uniform draws should be near 0.5.
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, NextBoolMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.NextBool(0.25);
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), shuffled.begin()));
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(19);
  std::vector<int> v(64);
  for (int i = 0; i < 64; ++i) v[i] = i;
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  EXPECT_NE(v, shuffled);
}

}  // namespace
}  // namespace csc
