// Property sweep for batch maintenance: random update sequences applied as
// (a) one ApplyUpdates batch, (b) sequential per-edge maintenance, and (c) a
// from-scratch rebuild must leave indistinguishable indexes (identical
// query answers everywhere), across strategies and rebuild thresholds.
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/bfs_cycle.h"
#include "dynamic/batch.h"
#include "dynamic/decremental.h"
#include "dynamic/incremental.h"
#include "graph/ordering.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace csc {
namespace {

// A deterministic random update sequence: mixes removals of existing edges,
// inserts of fresh edges, duplicate ops, and invalid ops.
std::vector<EdgeUpdate> MakeUpdateSequence(const DiGraph& graph, size_t count,
                                           uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> edges = graph.Edges();
  std::vector<EdgeUpdate> updates;
  for (size_t i = 0; i < count; ++i) {
    double roll = rng.NextDouble();
    if (roll < 0.35 && !edges.empty()) {
      const Edge& e = edges[rng.NextBounded(edges.size())];
      updates.push_back(EdgeUpdate::Remove(e.from, e.to));
    } else if (roll < 0.85) {
      Vertex u = static_cast<Vertex>(rng.NextBounded(graph.num_vertices()));
      Vertex v = static_cast<Vertex>(rng.NextBounded(graph.num_vertices()));
      updates.push_back(EdgeUpdate::Insert(u, v));  // may be loop/duplicate
    } else if (!updates.empty()) {
      // Duplicate an earlier op verbatim (stresses dedup).
      updates.push_back(updates[rng.NextBounded(updates.size())]);
    }
  }
  return updates;
}

// Applies `updates` to a plain graph, producing the reference final state.
DiGraph ReferenceApply(DiGraph graph, const std::vector<EdgeUpdate>& updates) {
  for (const EdgeUpdate& u : updates) {
    if (u.kind == UpdateKind::kInsert) {
      graph.AddEdge(u.edge.from, u.edge.to);
    } else {
      graph.RemoveEdge(u.edge.from, u.edge.to);
    }
  }
  return graph;
}

using Param = std::tuple<uint64_t /*seed*/, double /*rebuild_threshold*/>;

class BatchPropertyTest : public ::testing::TestWithParam<Param> {};

TEST_P(BatchPropertyTest, BatchEqualsReferenceEverywhere) {
  auto [seed, threshold] = GetParam();
  SCOPED_TRACE("seed=" + std::to_string(seed) +
               " threshold=" + std::to_string(threshold));
  DiGraph graph = RandomGraph(48, 2.5, seed);

  CscIndex::Options build_options;
  build_options.maintain_inverted_index = true;
  CscIndex index =
      CscIndex::Build(graph, DegreeOrdering(graph), build_options);

  std::vector<EdgeUpdate> updates = MakeUpdateSequence(graph, 24, seed + 7);
  DiGraph reference = ReferenceApply(graph, updates);

  BatchOptions options;
  options.strategy = MaintenanceStrategy::kMinimality;
  options.rebuild_threshold = threshold;
  BatchResult result = ApplyUpdates(index, updates, options);
  EXPECT_EQ(result.inserted + result.removed + result.skipped,
            updates.size());

  BfsCycleCounter oracle(reference);
  for (Vertex v = 0; v < reference.num_vertices(); ++v) {
    ASSERT_EQ(index.Query(v), oracle.CountCycles(v)) << "vertex " << v;
  }

  // The maintained index must keep accepting batches: apply a second one.
  std::vector<EdgeUpdate> more = MakeUpdateSequence(reference, 12, seed + 99);
  DiGraph reference2 = ReferenceApply(reference, more);
  ApplyUpdates(index, more, options);
  BfsCycleCounter oracle2(reference2);
  for (Vertex v = 0; v < reference2.num_vertices(); ++v) {
    ASSERT_EQ(index.Query(v), oracle2.CountCycles(v))
        << "second batch, vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndThresholds, BatchPropertyTest,
    ::testing::Combine(::testing::Values<uint64_t>(1, 2, 3, 4, 5),
                       ::testing::Values(0.0, 0.3, 10.0)),
    [](const ::testing::TestParamInfo<Param>& info) {
      std::string name = "s";
      name += std::to_string(std::get<0>(info.param));
      name += "_t";
      name += std::to_string(static_cast<int>(std::get<1>(info.param) * 10));
      return name;
    });

TEST(BatchVsSequentialTest, IdenticalAnswersInsertOnly) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    DiGraph graph = RandomGraph(40, 2.0, seed + 200);
    std::vector<EdgeUpdate> updates;
    Rng rng(seed);
    for (int i = 0; i < 12; ++i) {
      Vertex u = static_cast<Vertex>(rng.NextBounded(graph.num_vertices()));
      Vertex v = static_cast<Vertex>(rng.NextBounded(graph.num_vertices()));
      updates.push_back(EdgeUpdate::Insert(u, v));
    }

    CscIndex batched = CscIndex::Build(graph, DegreeOrdering(graph));
    BatchOptions options;
    options.rebuild_threshold = 10.0;
    ApplyUpdates(batched, updates, options);

    CscIndex sequential = CscIndex::Build(graph, DegreeOrdering(graph));
    for (const EdgeUpdate& u : updates) {
      InsertEdge(sequential, u.edge.from, u.edge.to);
    }

    for (Vertex v = 0; v < graph.num_vertices(); ++v) {
      ASSERT_EQ(batched.Query(v), sequential.Query(v))
          << "seed " << seed << " vertex " << v;
    }
  }
}

}  // namespace
}  // namespace csc
