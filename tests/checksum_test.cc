#include "util/checksum.h"

#include <string>

#include <gtest/gtest.h>

namespace csc {
namespace {

TEST(Crc32cTest, EmptyInputIsZero) {
  EXPECT_EQ(Crc32c("", 0), 0u);
}

TEST(Crc32cTest, KnownTestVector) {
  // The RFC 3720 / standard CRC-32C check value.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
}

TEST(Crc32cTest, AllZeros32Bytes) {
  // Second classic vector (iSCSI test pattern).
  unsigned char zeros[32] = {};
  EXPECT_EQ(Crc32c(zeros, sizeof(zeros)), 0x8A9136AAu);
}

TEST(Crc32cTest, AllOnes32Bytes) {
  unsigned char ones[32];
  for (unsigned char& b : ones) b = 0xff;
  EXPECT_EQ(Crc32c(ones, sizeof(ones)), 0x62A8AB43u);
}

TEST(Crc32cTest, SingleBitFlipChangesChecksum) {
  std::string data(100, 'x');
  uint32_t original = Crc32c(data);
  for (size_t byte = 0; byte < data.size(); byte += 13) {
    std::string mutated = data;
    mutated[byte] ^= 1;
    EXPECT_NE(Crc32c(mutated), original) << "flip at byte " << byte;
  }
}

TEST(Crc32cTest, ExtendComposesWithConcatenation) {
  std::string a = "hello, ";
  std::string b = "world";
  uint32_t whole = Crc32c(a + b);
  uint32_t extended = Crc32cExtend(Crc32c(a), b.data(), b.size());
  EXPECT_EQ(extended, whole);
}

TEST(Crc32cTest, ExtendWithEmptyIsIdentity) {
  std::string data = "payload";
  uint32_t crc = Crc32c(data);
  EXPECT_EQ(Crc32cExtend(crc, "", 0), crc);
}

TEST(Crc32cTest, StringViewOverloadMatchesPointerForm) {
  std::string data = "some index bytes";
  EXPECT_EQ(Crc32c(std::string_view(data)), Crc32c(data.data(), data.size()));
}

}  // namespace
}  // namespace csc
