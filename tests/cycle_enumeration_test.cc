#include "graph/cycle_enumeration.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baseline/bfs_cycle.h"
#include "tests/test_util.h"

namespace csc {
namespace {

TEST(CycleEnumerationTest, Figure2V7HasThreeKnownCycles) {
  DiGraph g = Figure2Graph();
  auto cycles = EnumerateShortestCycles(g, 6, 100);  // v7
  ASSERT_EQ(cycles.size(), 3u);
  std::set<std::vector<Vertex>> found(cycles.begin(), cycles.end());
  // v7->v8->v9->v10->{v1->v4 | v1->v5 | v2->v4}->v7 (0-based ids).
  EXPECT_TRUE(found.count({6, 7, 8, 9, 0, 3}));
  EXPECT_TRUE(found.count({6, 7, 8, 9, 0, 4}));
  EXPECT_TRUE(found.count({6, 7, 8, 9, 1, 3}));
}

TEST(CycleEnumerationTest, CyclesAreValidAndShortest) {
  DiGraph g = RandomGraph(40, 3.0, 3);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    CycleCount expected = BfsCountCycles(g, v);
    auto cycles = EnumerateShortestCycles(g, v, 10000);
    if (expected.count == 0) {
      EXPECT_TRUE(cycles.empty());
      continue;
    }
    ASSERT_EQ(cycles.size(), expected.count) << "vertex " << v;
    for (const auto& cycle : cycles) {
      ASSERT_EQ(cycle.size(), expected.length) << "vertex " << v;
      EXPECT_EQ(cycle.front(), v);
      // Consecutive edges exist and the cycle closes.
      for (size_t i = 0; i + 1 < cycle.size(); ++i) {
        EXPECT_TRUE(g.HasEdge(cycle[i], cycle[i + 1]));
      }
      EXPECT_TRUE(g.HasEdge(cycle.back(), v));
      // Simple: no repeated vertices.
      std::set<Vertex> unique(cycle.begin(), cycle.end());
      EXPECT_EQ(unique.size(), cycle.size());
    }
    // All enumerated cycles are distinct.
    std::set<std::vector<Vertex>> unique_cycles(cycles.begin(), cycles.end());
    EXPECT_EQ(unique_cycles.size(), cycles.size());
  }
}

TEST(CycleEnumerationTest, CountAgreesWithBfsAcrossSeeds) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    DiGraph g = RandomGraph(30, 2.5, seed + 100);
    for (Vertex v = 0; v < g.num_vertices(); v += 3) {
      CycleCount expected = BfsCountCycles(g, v);
      auto cycles = EnumerateShortestCycles(g, v, 100000);
      EXPECT_EQ(cycles.size(), expected.count)
          << "seed " << seed << " vertex " << v;
    }
  }
}

TEST(CycleEnumerationTest, LimitTruncatesOutput) {
  // A vertex with many parallel shortest cycles.
  DiGraph g(12);
  for (Vertex i = 2; i < 12; ++i) {
    g.AddEdge(0, i);
    g.AddEdge(i, 1);
  }
  g.AddEdge(1, 0);
  EXPECT_EQ(BfsCountCycles(g, 0).count, 10u);
  EXPECT_EQ(EnumerateShortestCycles(g, 0, 4).size(), 4u);
  EXPECT_EQ(EnumerateShortestCycles(g, 0, 0).size(), 0u);
  EXPECT_EQ(EnumerateShortestCycles(g, 0, 100).size(), 10u);
}

TEST(CycleEnumerationTest, TwoCycleEnumerates) {
  DiGraph g(2);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  auto cycles = EnumerateShortestCycles(g, 0, 10);
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0], (std::vector<Vertex>{0, 1}));
}

TEST(CycleEnumerationTest, NoCycleAndOutOfRange) {
  DiGraph g(3);
  g.AddEdge(0, 1);
  EXPECT_TRUE(EnumerateShortestCycles(g, 0, 10).empty());
  EXPECT_TRUE(EnumerateShortestCycles(g, 42, 10).empty());
}

}  // namespace
}  // namespace csc
