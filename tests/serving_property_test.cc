// Property sweep across every query-serving form of the index: for random
// graphs from four generator families, the dynamic index, the compact
// (§IV.E) reduction, the frozen CSR layout, the varint-compressed form, the
// caching wrapper and the precompute-all baseline all agree with the BFS
// oracle on every vertex — and with the SCC structural invariant
// (SCCnt(v) > 0 iff v's component is non-trivial).
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "baseline/bfs_cycle.h"
#include "baseline/precompute_all.h"
#include "csc/cached_index.h"
#include "csc/compact_index.h"
#include "csc/csc_index.h"
#include "csc/frozen_index.h"
#include "csc/girth.h"
#include "graph/generators.h"
#include "graph/ordering.h"
#include "graph/scc.h"
#include "labeling/compressed.h"
#include "tests/test_util.h"

namespace csc {
namespace {

enum class Family { kErdosRenyi, kPowerLaw, kSmallWorld, kSbm };

std::string FamilyName(Family family) {
  switch (family) {
    case Family::kErdosRenyi:
      return "ErdosRenyi";
    case Family::kPowerLaw:
      return "PowerLaw";
    case Family::kSmallWorld:
      return "SmallWorld";
    case Family::kSbm:
      return "Sbm";
  }
  return "?";
}

DiGraph MakeGraph(Family family, Vertex n, uint64_t seed) {
  switch (family) {
    case Family::kErdosRenyi:
      return GenerateErdosRenyi(n, static_cast<uint64_t>(2.5 * n), seed);
    case Family::kPowerLaw:
      return GeneratePreferentialAttachment(n, 2, 0.15, seed);
    case Family::kSmallWorld:
      return GenerateSmallWorld(n, 2, 0.2, seed);
    case Family::kSbm: {
      SbmConfig config;
      config.num_vertices = n;
      config.num_blocks = 4;
      config.intra_p = 8.0 / n;
      config.inter_p = 0.5 / n;
      return GenerateStochasticBlockModel(config, seed);
    }
  }
  return DiGraph();
}

using Param = std::tuple<Family, Vertex, uint64_t>;

class ServingFormsTest : public ::testing::TestWithParam<Param> {};

TEST_P(ServingFormsTest, EveryFormAgreesWithOracleAndSccInvariant) {
  auto [family, n, seed] = GetParam();
  SCOPED_TRACE(FamilyName(family) + " n=" + std::to_string(n) +
               " seed=" + std::to_string(seed));
  DiGraph graph = MakeGraph(family, n, seed);

  CscIndex index = CscIndex::Build(graph, DegreeOrdering(graph));
  CompactIndex compact = CompactIndex::FromIndex(index);
  FrozenIndex frozen = FrozenIndex::FromCompact(compact);
  CompressedIndex compressed = CompressedIndex::FromCompact(compact);
  CachedCscIndex cached(CscIndex::Build(graph, DegreeOrdering(graph)));
  PrecomputeAllIndex precomputed = PrecomputeAllIndex::Build(graph);
  SccResult scc = ComputeScc(graph);
  BfsCycleCounter oracle(graph);

  for (Vertex v = 0; v < graph.num_vertices(); ++v) {
    CycleCount truth = oracle.CountCycles(v);
    ASSERT_EQ(index.Query(v), truth) << "dynamic, vertex " << v;
    ASSERT_EQ(compact.Query(v), truth) << "compact, vertex " << v;
    ASSERT_EQ(frozen.Query(v), truth) << "frozen, vertex " << v;
    ASSERT_EQ(compressed.Query(v), truth) << "compressed, vertex " << v;
    ASSERT_EQ(cached.Query(v), truth) << "cached, vertex " << v;
    ASSERT_EQ(precomputed.Query(v), truth) << "precomputed, vertex " << v;
    ASSERT_EQ(truth.count > 0, scc.OnCycle(v)) << "SCC invariant, vertex "
                                               << v;
  }
}

TEST_P(ServingFormsTest, GirthAgreesAcrossForms) {
  auto [family, n, seed] = GetParam();
  DiGraph graph = MakeGraph(family, n, seed + 1000);
  CscIndex index = CscIndex::Build(graph, DegreeOrdering(graph));
  FrozenIndex frozen = FrozenIndex::FromIndex(index);
  GirthInfo dynamic_girth = ComputeGirth(index);
  GirthInfo frozen_girth = ComputeGirth(frozen);
  EXPECT_EQ(dynamic_girth.girth, frozen_girth.girth);
  EXPECT_EQ(dynamic_girth.num_girth_vertices,
            frozen_girth.num_girth_vertices);
  // Cross-check girth against the oracle sweep.
  BfsCycleCounter oracle(graph);
  Dist oracle_girth = kInfDist;
  for (Vertex v = 0; v < graph.num_vertices(); ++v) {
    CycleCount c = oracle.CountCycles(v);
    if (c.count > 0) oracle_girth = std::min(oracle_girth, c.length);
  }
  EXPECT_EQ(dynamic_girth.girth, oracle_girth);
}

INSTANTIATE_TEST_SUITE_P(
    SweepFamiliesSizesSeeds, ServingFormsTest,
    ::testing::Combine(
        ::testing::Values(Family::kErdosRenyi, Family::kPowerLaw,
                          Family::kSmallWorld, Family::kSbm),
        ::testing::Values<Vertex>(32, 96),
        ::testing::Values<uint64_t>(1, 2, 3)),
    [](const ::testing::TestParamInfo<Param>& info) {
      return FamilyName(std::get<0>(info.param)) + "_n" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace csc
