#include "serving/engine.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "baseline/bfs_cycle.h"
#include "csc/girth.h"
#include "tests/test_util.h"

namespace csc {
namespace {

std::vector<CycleCount> BfsReference(const DiGraph& graph) {
  BfsCycleCounter reference(graph);
  std::vector<CycleCount> answers(graph.num_vertices());
  for (Vertex v = 0; v < graph.num_vertices(); ++v) {
    answers[v] = reference.CountCycles(v);
  }
  return answers;
}

TEST(EngineTest, UnknownBackendIsInvalid) {
  EngineOptions options;
  options.backend = "no-such-backend";
  Engine engine(options);
  EXPECT_FALSE(engine.valid());
  EXPECT_FALSE(engine.Build(Figure2Graph()));
  EXPECT_EQ(engine.Query(0), CycleCount{});
}

TEST(EngineTest, BuildAndQueryEveryBackend) {
  DiGraph graph = RandomGraph(50, 2.0, 3);
  std::vector<CycleCount> expected = BfsReference(graph);
  for (const std::string& name : AllBackendNames()) {
    EngineOptions options;
    options.backend = name;
    options.num_threads = 2;
    Engine engine(options);
    ASSERT_TRUE(engine.valid()) << name;
    ASSERT_TRUE(engine.Build(graph)) << name;
    EXPECT_EQ(engine.num_vertices(), graph.num_vertices());
    for (Vertex v = 0; v < graph.num_vertices(); v += 5) {
      EXPECT_EQ(engine.Query(v), expected[v]) << name << " vertex " << v;
    }
    EXPECT_EQ(engine.QueryAll(), expected) << name;
    EXPECT_EQ(engine.Stats().name, name);
  }
}

TEST(EngineTest, BatchQueryMatchesSequentialAcrossGrains) {
  DiGraph graph = RandomGraph(120, 2.5, 5);
  std::vector<Vertex> workload;
  for (Vertex v = 0; v < graph.num_vertices(); ++v) {
    workload.push_back(v);
    workload.push_back(graph.num_vertices() - 1 - v);
  }
  EngineOptions options;
  options.backend = "frozen";
  options.num_threads = 4;
  options.batch_grain = 16;  // force multiple parallel chunks
  Engine engine(options);
  ASSERT_TRUE(engine.Build(graph));
  std::vector<CycleCount> batched = engine.BatchQuery(workload);
  ASSERT_EQ(batched.size(), workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    EXPECT_EQ(batched[i], engine.Query(workload[i])) << "i=" << i;
  }
}

TEST(EngineTest, InPlaceUpdatesOnDynamicBackend) {
  DiGraph graph = Figure2Graph();
  EngineOptions options;
  options.backend = "csc";
  Engine engine(options);
  ASSERT_TRUE(engine.Build(graph));
  std::vector<EdgeUpdate> updates = {EdgeUpdate::Insert(7, 6),
                                     EdgeUpdate::Insert(6, 0),
                                     EdgeUpdate::Insert(7, 6)};  // duplicate
  EXPECT_EQ(engine.ApplyUpdates(updates), 2u);
  graph.AddEdge(7, 6);
  graph.AddEdge(6, 0);
  EXPECT_EQ(engine.QueryAll(), BfsReference(graph));
}

TEST(EngineTest, WarmSnapshotSwapOnStaticBackend) {
  DiGraph graph = Figure2Graph();
  EngineOptions options;
  options.backend = "frozen";
  Engine engine(options);
  ASSERT_TRUE(engine.Build(graph));
  std::shared_ptr<CycleIndex> before = engine.snapshot();
  CycleCount before_answer = before->CountShortestCycles(6);

  std::vector<EdgeUpdate> updates = {EdgeUpdate::Insert(7, 6)};
  EXPECT_EQ(engine.ApplyUpdates(updates), 1u);
  graph.AddEdge(7, 6);

  // The engine swapped in a fresh snapshot...
  std::shared_ptr<CycleIndex> after = engine.snapshot();
  EXPECT_NE(before.get(), after.get());
  EXPECT_EQ(engine.QueryAll(), BfsReference(graph));
  // ...while the retired snapshot keeps answering with its own (old) view.
  EXPECT_EQ(before->CountShortestCycles(6), before_answer);

  // Rejected-only batches do not rebuild.
  std::shared_ptr<CycleIndex> current = engine.snapshot();
  EXPECT_EQ(engine.ApplyUpdates({EdgeUpdate::Insert(7, 6)}), 0u);
  EXPECT_EQ(engine.snapshot().get(), current.get());
}

TEST(EngineTest, SaveLoadRoundTrip) {
  DiGraph graph = RandomGraph(40, 2.0, 8);
  EngineOptions build_options;
  build_options.backend = "csc";
  Engine builder(build_options);
  ASSERT_TRUE(builder.Build(graph));
  std::string bytes;
  ASSERT_TRUE(builder.SaveTo(bytes));

  for (const char* serving : {"compact", "frozen", "compressed"}) {
    EngineOptions options;
    options.backend = serving;
    Engine engine(options);
    ASSERT_TRUE(engine.LoadFrom(bytes)) << serving;
    EXPECT_EQ(engine.QueryAll(), BfsReference(graph)) << serving;
    // No graph retained after LoadFrom: static updates cannot apply.
    EXPECT_EQ(engine.ApplyUpdates({EdgeUpdate::Insert(0, 1)}), 0u);
  }
}

// The dynamic (in-place) and static (graph + rebuild) update paths must
// agree on what counts as "applied" — including edges touching vertices
// added through BuildOptions::reserve_vertices and out-of-range endpoints —
// and converge to the same answers.
TEST(EngineTest, UpdatePathsAgreeOnReserveAndOutOfRange) {
  DiGraph graph = Figure2Graph();  // 10 vertices; 10 and 11 are reserved
  const std::vector<EdgeUpdate> updates = {
      EdgeUpdate::Insert(9, 10),   // attach a reserved vertex
      EdgeUpdate::Insert(10, 0),   // close a cycle through it
      EdgeUpdate::Insert(50, 0),   // out of range: rejected on every path
      EdgeUpdate::Remove(0, 50),   // out of range: rejected on every path
      EdgeUpdate::Remove(11, 10),  // absent edge between reserved vertices
  };
  DiGraph expected_graph = graph;
  expected_graph.AddVertices(2);
  expected_graph.AddEdge(9, 10);
  expected_graph.AddEdge(10, 0);
  std::vector<CycleCount> expected = BfsReference(expected_graph);

  for (const std::string& name : AllBackendNames()) {
    EngineOptions options;
    options.backend = name;
    options.build.reserve_vertices = 2;
    Engine engine(options);
    ASSERT_TRUE(engine.Build(graph)) << name;
    ASSERT_EQ(engine.num_vertices(), 12u) << name;
    std::vector<bool> verdicts;
    EXPECT_EQ(engine.ApplyUpdates(updates, &verdicts), 2u) << name;
    EXPECT_EQ(verdicts,
              (std::vector<bool>{true, true, false, false, false}))
        << name;
    EXPECT_EQ(engine.QueryAll(), expected) << name;
  }
}

// A batch that is rejected in full must not swap snapshots on the static
// path, and repeated batches must not grow the reserved vertex space (the
// rebuild re-reserving on every swap was the bug).
TEST(EngineTest, StaticRebuildKeepsVertexSpaceStable) {
  EngineOptions options;
  options.backend = "frozen";
  options.build.reserve_vertices = 3;
  Engine engine(options);
  ASSERT_TRUE(engine.Build(Figure2Graph()));
  ASSERT_EQ(engine.num_vertices(), 13u);
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(engine.ApplyUpdates({EdgeUpdate::Insert(0, 1)}), 1u);
    EXPECT_EQ(engine.num_vertices(), 13u) << "round " << round;
    EXPECT_EQ(engine.ApplyUpdates({EdgeUpdate::Remove(0, 1)}), 1u);
    EXPECT_EQ(engine.num_vertices(), 13u) << "round " << round;
  }
}

TEST(EngineTest, GirthMatchesReference) {
  DiGraph graph = RandomGraph(60, 2.0, 12);
  BfsCycleCounter reference(graph);
  GirthInfo expected = ComputeGirth(
      graph.num_vertices(), [&](Vertex v) { return reference.CountCycles(v); });
  for (const char* name : {"frozen", "cached", "bfs"}) {
    EngineOptions options;
    options.backend = name;
    Engine engine(options);
    ASSERT_TRUE(engine.Build(graph));
    GirthInfo actual = engine.Girth();
    EXPECT_EQ(actual.girth, expected.girth) << name;
    EXPECT_EQ(actual.num_girth_vertices, expected.num_girth_vertices) << name;
  }
}

}  // namespace
}  // namespace csc
