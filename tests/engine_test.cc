#include "serving/engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "baseline/bfs_cycle.h"
#include "csc/girth.h"
#include "tests/test_util.h"

namespace csc {
namespace {

std::vector<CycleCount> BfsReference(const DiGraph& graph) {
  BfsCycleCounter reference(graph);
  std::vector<CycleCount> answers(graph.num_vertices());
  for (Vertex v = 0; v < graph.num_vertices(); ++v) {
    answers[v] = reference.CountCycles(v);
  }
  return answers;
}

TEST(EngineTest, UnknownBackendIsInvalid) {
  EngineOptions options;
  options.backend = "no-such-backend";
  Engine engine(options);
  EXPECT_FALSE(engine.valid());
  EXPECT_FALSE(engine.Build(Figure2Graph()));
  EXPECT_EQ(engine.Query(0), CycleCount{});
}

TEST(EngineTest, BuildAndQueryEveryBackend) {
  DiGraph graph = RandomGraph(50, 2.0, 3);
  std::vector<CycleCount> expected = BfsReference(graph);
  for (const std::string& name : AllBackendNames()) {
    EngineOptions options;
    options.backend = name;
    options.num_threads = 2;
    Engine engine(options);
    ASSERT_TRUE(engine.valid()) << name;
    ASSERT_TRUE(engine.Build(graph)) << name;
    EXPECT_EQ(engine.num_vertices(), graph.num_vertices());
    for (Vertex v = 0; v < graph.num_vertices(); v += 5) {
      EXPECT_EQ(engine.Query(v), expected[v]) << name << " vertex " << v;
    }
    EXPECT_EQ(engine.QueryAll(), expected) << name;
    EXPECT_EQ(engine.Stats().name, name);
  }
}

TEST(EngineTest, BatchQueryMatchesSequentialAcrossGrains) {
  DiGraph graph = RandomGraph(120, 2.5, 5);
  std::vector<Vertex> workload;
  for (Vertex v = 0; v < graph.num_vertices(); ++v) {
    workload.push_back(v);
    workload.push_back(graph.num_vertices() - 1 - v);
  }
  EngineOptions options;
  options.backend = "frozen";
  options.num_threads = 4;
  options.batch_grain = 16;  // force multiple parallel chunks
  Engine engine(options);
  ASSERT_TRUE(engine.Build(graph));
  std::vector<CycleCount> batched = engine.BatchQuery(workload);
  ASSERT_EQ(batched.size(), workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    EXPECT_EQ(batched[i], engine.Query(workload[i])) << "i=" << i;
  }
}

TEST(EngineTest, InPlaceUpdatesOnDynamicBackend) {
  DiGraph graph = Figure2Graph();
  EngineOptions options;
  options.backend = "csc";
  Engine engine(options);
  ASSERT_TRUE(engine.Build(graph));
  std::vector<EdgeUpdate> updates = {EdgeUpdate::Insert(7, 6),
                                     EdgeUpdate::Insert(6, 0),
                                     EdgeUpdate::Insert(7, 6)};  // duplicate
  EXPECT_EQ(engine.ApplyUpdates(updates), 2u);
  graph.AddEdge(7, 6);
  graph.AddEdge(6, 0);
  EXPECT_EQ(engine.QueryAll(), BfsReference(graph));
}

TEST(EngineTest, WarmSnapshotSwapOnStaticBackend) {
  DiGraph graph = Figure2Graph();
  EngineOptions options;
  options.backend = "frozen";
  Engine engine(options);
  ASSERT_TRUE(engine.Build(graph));
  std::shared_ptr<CycleIndex> before = engine.snapshot();
  CycleCount before_answer = before->CountShortestCycles(6);

  std::vector<EdgeUpdate> updates = {EdgeUpdate::Insert(7, 6)};
  EXPECT_EQ(engine.ApplyUpdates(updates), 1u);
  graph.AddEdge(7, 6);

  // The engine swapped in a fresh snapshot...
  std::shared_ptr<CycleIndex> after = engine.snapshot();
  EXPECT_NE(before.get(), after.get());
  EXPECT_EQ(engine.QueryAll(), BfsReference(graph));
  // ...while the retired snapshot keeps answering with its own (old) view.
  EXPECT_EQ(before->CountShortestCycles(6), before_answer);

  // Rejected-only batches do not rebuild.
  std::shared_ptr<CycleIndex> current = engine.snapshot();
  EXPECT_EQ(engine.ApplyUpdates({EdgeUpdate::Insert(7, 6)}), 0u);
  EXPECT_EQ(engine.snapshot().get(), current.get());
}

TEST(EngineTest, SaveLoadRoundTrip) {
  DiGraph graph = RandomGraph(40, 2.0, 8);
  EngineOptions build_options;
  build_options.backend = "csc";
  Engine builder(build_options);
  ASSERT_TRUE(builder.Build(graph));
  std::string bytes;
  ASSERT_TRUE(builder.SaveTo(bytes));

  for (const char* serving : {"compact", "frozen", "compressed"}) {
    EngineOptions options;
    options.backend = serving;
    Engine engine(options);
    ASSERT_TRUE(engine.LoadFrom(bytes)) << serving;
    EXPECT_EQ(engine.QueryAll(), BfsReference(graph)) << serving;
    // No graph retained after LoadFrom: static updates cannot apply.
    EXPECT_EQ(engine.ApplyUpdates({EdgeUpdate::Insert(0, 1)}), 0u);
  }
}

// The dynamic (in-place) and static (graph + rebuild) update paths must
// agree on what counts as "applied" — including edges touching vertices
// added through BuildOptions::reserve_vertices and out-of-range endpoints —
// and converge to the same answers.
TEST(EngineTest, UpdatePathsAgreeOnReserveAndOutOfRange) {
  DiGraph graph = Figure2Graph();  // 10 vertices; 10 and 11 are reserved
  const std::vector<EdgeUpdate> updates = {
      EdgeUpdate::Insert(9, 10),   // attach a reserved vertex
      EdgeUpdate::Insert(10, 0),   // close a cycle through it
      EdgeUpdate::Insert(50, 0),   // out of range: rejected on every path
      EdgeUpdate::Remove(0, 50),   // out of range: rejected on every path
      EdgeUpdate::Remove(11, 10),  // absent edge between reserved vertices
  };
  DiGraph expected_graph = graph;
  expected_graph.AddVertices(2);
  expected_graph.AddEdge(9, 10);
  expected_graph.AddEdge(10, 0);
  std::vector<CycleCount> expected = BfsReference(expected_graph);

  for (const std::string& name : AllBackendNames()) {
    EngineOptions options;
    options.backend = name;
    options.build.reserve_vertices = 2;
    Engine engine(options);
    ASSERT_TRUE(engine.Build(graph)) << name;
    ASSERT_EQ(engine.num_vertices(), 12u) << name;
    std::vector<UpdateVerdict> verdicts;
    EXPECT_EQ(engine.ApplyUpdates(updates, &verdicts), 2u) << name;
    EXPECT_EQ(verdicts,
              (std::vector<UpdateVerdict>{
                  UpdateVerdict::kApplied, UpdateVerdict::kApplied,
                  UpdateVerdict::kRejected, UpdateVerdict::kRejected,
                  UpdateVerdict::kRejected}))
        << name;
    EXPECT_EQ(engine.QueryAll(), expected) << name;
  }
}

// A batch that is rejected in full must not swap snapshots on the static
// path, and repeated batches must not grow the reserved vertex space (the
// rebuild re-reserving on every swap was the bug).
TEST(EngineTest, StaticRebuildKeepsVertexSpaceStable) {
  EngineOptions options;
  options.backend = "frozen";
  options.build.reserve_vertices = 3;
  Engine engine(options);
  ASSERT_TRUE(engine.Build(Figure2Graph()));
  ASSERT_EQ(engine.num_vertices(), 13u);
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(engine.ApplyUpdates({EdgeUpdate::Insert(0, 1)}), 1u);
    EXPECT_EQ(engine.num_vertices(), 13u) << "round " << round;
    EXPECT_EQ(engine.ApplyUpdates({EdgeUpdate::Remove(0, 1)}), 1u);
    EXPECT_EQ(engine.num_vertices(), 13u) << "round " << round;
  }
}

// A static engine restored from a payload has no graph to rebuild from:
// updates must be reported as kNoGraph — distinguishable from per-update
// rejection — until Build supplies the graph.
TEST(EngineTest, NoGraphVerdictAfterLoad) {
  DiGraph graph = Figure2Graph();
  EngineOptions build_options;
  build_options.backend = "csc";
  Engine builder(build_options);
  ASSERT_TRUE(builder.Build(graph));
  std::string bytes;
  ASSERT_TRUE(builder.SaveTo(bytes));

  EngineOptions options;
  options.backend = "frozen";
  Engine engine(options);
  ASSERT_TRUE(engine.LoadFrom(bytes));
  std::vector<EdgeUpdate> updates = {EdgeUpdate::Insert(7, 6),
                                     EdgeUpdate::Insert(100, 0)};
  std::vector<UpdateVerdict> verdicts;
  uint64_t epoch = 42;
  EXPECT_EQ(engine.ApplyUpdates(updates, &verdicts, &epoch), 0u);
  EXPECT_EQ(verdicts, (std::vector<UpdateVerdict>{UpdateVerdict::kNoGraph,
                                                  UpdateVerdict::kNoGraph}));
  // The no-graph rejection resolves immediately (nothing was admitted).
  EXPECT_TRUE(engine.WaitForEpoch(epoch));

  // Build supplies the graph; the same batch then gets real verdicts.
  ASSERT_TRUE(engine.Build(graph));
  EXPECT_EQ(engine.ApplyUpdates(updates, &verdicts), 1u);
  EXPECT_EQ(verdicts, (std::vector<UpdateVerdict>{UpdateVerdict::kApplied,
                                                  UpdateVerdict::kRejected}));
}

// Regression for the duplicate-edge accounting disagreement: updates on the
// same edge inside one batch must collapse to their net effect — exactly
// like dynamic/batch.h's net-effect reduction — on both the in-place and
// the rebuild-and-swap path.
TEST(EngineTest, DuplicateEdgesInBatchCollapseToNetEffect) {
  for (const char* name : {"csc", "frozen"}) {
    SCOPED_TRACE(name);
    DiGraph graph = Figure2Graph();
    EngineOptions options;
    options.backend = name;
    Engine engine(options);
    ASSERT_TRUE(engine.Build(graph));
    std::vector<CycleCount> before = engine.QueryAll();
    std::shared_ptr<CycleIndex> initial = engine.snapshot();

    // Insert + remove of an absent edge: a cancelled pair, net zero. The
    // per-update accounting used to report both as applied (count 2).
    std::vector<UpdateVerdict> verdicts;
    EXPECT_EQ(engine.ApplyUpdates({EdgeUpdate::Insert(7, 0),
                                   EdgeUpdate::Remove(7, 0)},
                                  &verdicts),
              0u);
    EXPECT_EQ(verdicts, (std::vector<UpdateVerdict>{
                            UpdateVerdict::kRejected, UpdateVerdict::kRejected}));
    EXPECT_EQ(engine.QueryAll(), before);
    if (std::string(name) == "frozen") {
      // Net-zero batches must not rebuild-and-swap on the static path.
      EXPECT_EQ(engine.snapshot().get(), initial.get());
    }

    // An odd toggle chain nets to its final op: only that one is applied.
    EXPECT_EQ(engine.ApplyUpdates({EdgeUpdate::Insert(7, 0),
                                   EdgeUpdate::Remove(7, 0),
                                   EdgeUpdate::Insert(7, 0)},
                                  &verdicts),
              1u);
    EXPECT_EQ(verdicts,
              (std::vector<UpdateVerdict>{UpdateVerdict::kRejected,
                                          UpdateVerdict::kRejected,
                                          UpdateVerdict::kApplied}));
    DiGraph target = graph;
    target.AddEdge(7, 0);
    EXPECT_EQ(engine.QueryAll(), BfsReference(target));
  }
}

// Synchronous engines still speak the epoch protocol: tokens resolve
// before ApplyUpdates returns, so WaitForEpoch / Drain are no-ops.
TEST(EngineTest, SynchronousEpochsResolveBeforeReturn) {
  EngineOptions options;
  options.backend = "frozen";
  Engine engine(options);
  ASSERT_TRUE(engine.Build(Figure2Graph()));
  EXPECT_EQ(engine.resolved_epoch(), 0u);
  uint64_t epoch = 0;
  EXPECT_EQ(engine.ApplyUpdates({EdgeUpdate::Insert(7, 6)}, nullptr, &epoch),
            1u);
  EXPECT_GT(epoch, 0u);
  EXPECT_EQ(engine.resolved_epoch(), epoch);
  EXPECT_TRUE(engine.WaitForEpoch(epoch));
  engine.Drain();  // nothing pending; must not block
}

TEST(EngineTest, AsyncUpdatesLandAfterDrain) {
  DiGraph graph = Figure2Graph();
  EngineOptions options;
  options.backend = "frozen";
  options.async_updates = true;
  Engine engine(options);
  ASSERT_TRUE(engine.Build(graph));

  // Several batches admitted back to back: each returns with its own epoch
  // after validation; the rebuild worker may coalesce them into fewer
  // rebuilds, but every epoch must resolve as landed.
  std::vector<uint64_t> epochs;
  std::vector<EdgeUpdate> batches[] = {
      {EdgeUpdate::Insert(7, 6)},
      {EdgeUpdate::Insert(6, 0)},
      {EdgeUpdate::Remove(0, 2), EdgeUpdate::Insert(100, 0)},
  };
  size_t expected_applied[] = {1, 1, 1};
  for (size_t b = 0; b < 3; ++b) {
    uint64_t epoch = 0;
    EXPECT_EQ(engine.ApplyUpdates(batches[b], nullptr, &epoch),
              expected_applied[b]);
    EXPECT_EQ(epoch, b + 1);
    epochs.push_back(epoch);
  }
  engine.Drain();
  for (uint64_t epoch : epochs) {
    EXPECT_TRUE(engine.WaitForEpoch(epoch)) << "epoch " << epoch;
  }
  graph.AddEdge(7, 6);
  graph.AddEdge(6, 0);
  graph.RemoveEdge(0, 2);
  EXPECT_EQ(engine.QueryAll(), BfsReference(graph));

  // Read-your-writes through WaitForEpoch alone (no Drain).
  uint64_t epoch = 0;
  EXPECT_EQ(engine.ApplyUpdates({EdgeUpdate::Insert(0, 2)}, nullptr, &epoch),
            1u);
  EXPECT_TRUE(engine.WaitForEpoch(epoch));
  graph.AddEdge(0, 2);
  EXPECT_EQ(engine.QueryAll(), BfsReference(graph));
}

// The PR 2 rollback guarantee across the async boundary: a failed rebuild
// rolls the admitted batch back, the old snapshot keeps serving, and the
// failure is observable through the batch's epoch token.
TEST(EngineTest, RollbackOnFailedRebuildSyncAndAsync) {
  for (bool async_mode : {false, true}) {
    SCOPED_TRACE(async_mode ? "async" : "sync");
    DiGraph graph = Figure2Graph();
    auto fail = std::make_shared<std::atomic<bool>>(false);
    EngineOptions options;
    options.backend = "frozen";
    options.async_updates = async_mode;
    options.fail_rebuild_for_testing = [fail] { return fail->load(); };
    Engine engine(options);
    ASSERT_TRUE(engine.Build(graph));
    std::vector<CycleCount> before = engine.QueryAll();

    fail->store(true);
    uint64_t failed_epoch = 0;
    std::vector<UpdateVerdict> verdicts;
    size_t admitted = engine.ApplyUpdates({EdgeUpdate::Insert(7, 6)},
                                          &verdicts, &failed_epoch);
    if (async_mode) {
      // Admission succeeds; the failure surfaces when the epoch resolves.
      EXPECT_EQ(admitted, 1u);
      EXPECT_EQ(verdicts.front(), UpdateVerdict::kApplied);
    } else {
      EXPECT_EQ(admitted, 0u);
      EXPECT_EQ(verdicts.front(), UpdateVerdict::kRejected);
    }
    EXPECT_FALSE(engine.WaitForEpoch(failed_epoch));
    EXPECT_EQ(engine.QueryAll(), before);

    // A trivially-resolved batch after a failure must not inherit the
    // failed epoch: its token reflects the newest *landed* state and
    // reports true (regression: it used to hand out resolved_epoch_,
    // which was the failed one).
    uint64_t noop_epoch = 99;
    EXPECT_EQ(engine.ApplyUpdates(
                  {EdgeUpdate::Insert(7, 0), EdgeUpdate::Remove(7, 0)},
                  nullptr, &noop_epoch),
              0u);
    EXPECT_TRUE(engine.WaitForEpoch(noop_epoch));

    // The rollback restored the retained graph: once rebuilds heal, the
    // same batch validates and lands exactly as if the failure never
    // happened.
    fail->store(false);
    uint64_t epoch = 0;
    EXPECT_EQ(engine.ApplyUpdates({EdgeUpdate::Insert(7, 6)}, nullptr, &epoch),
              1u);
    EXPECT_TRUE(engine.WaitForEpoch(epoch));
    DiGraph target = graph;
    target.AddEdge(7, 6);
    EXPECT_EQ(engine.QueryAll(), BfsReference(target));
  }
}

// A rebuild that *throws* (std::bad_alloc, or a staging-task exception
// rethrown by ThreadPool::Wait under build_threads) must behave exactly
// like a failed rebuild: rollback, old snapshot keeps serving, failure
// reported through the epoch — never an escaped exception (which would
// terminate the process on the async worker) or a half-updated graph.
TEST(EngineTest, ThrowingRebuildRollsBackSyncAndAsync) {
  for (bool async_mode : {false, true}) {
    SCOPED_TRACE(async_mode ? "async" : "sync");
    DiGraph graph = Figure2Graph();
    auto fail = std::make_shared<std::atomic<bool>>(false);
    EngineOptions options;
    options.backend = "frozen";
    options.async_updates = async_mode;
    options.build_threads = 2;
    options.fail_rebuild_for_testing = [fail]() -> bool {
      if (fail->load()) throw std::runtime_error("rebuild blew up");
      return false;
    };
    Engine engine(options);
    ASSERT_TRUE(engine.Build(graph));
    std::vector<CycleCount> before = engine.QueryAll();

    fail->store(true);
    uint64_t failed_epoch = 0;
    engine.ApplyUpdates({EdgeUpdate::Insert(7, 6)}, nullptr, &failed_epoch);
    EXPECT_FALSE(engine.WaitForEpoch(failed_epoch));
    EXPECT_EQ(engine.QueryAll(), before);

    // Healed rebuilds land the same batch from the rolled-back state.
    fail->store(false);
    uint64_t epoch = 0;
    EXPECT_EQ(engine.ApplyUpdates({EdgeUpdate::Insert(7, 6)}, nullptr, &epoch),
              1u);
    EXPECT_TRUE(engine.WaitForEpoch(epoch));
    DiGraph target = graph;
    target.AddEdge(7, 6);
    EXPECT_EQ(engine.QueryAll(), BfsReference(target));
  }
}

TEST(EngineTest, GirthMatchesReference) {
  DiGraph graph = RandomGraph(60, 2.0, 12);
  BfsCycleCounter reference(graph);
  GirthInfo expected = ComputeGirth(
      graph.num_vertices(), [&](Vertex v) { return reference.CountCycles(v); });
  for (const char* name : {"frozen", "cached", "bfs"}) {
    EngineOptions options;
    options.backend = name;
    Engine engine(options);
    ASSERT_TRUE(engine.Build(graph));
    GirthInfo actual = engine.Girth();
    EXPECT_EQ(actual.girth, expected.girth) << name;
    EXPECT_EQ(actual.num_girth_vertices, expected.num_girth_vertices) << name;
  }
}

}  // namespace
}  // namespace csc
