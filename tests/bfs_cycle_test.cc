#include "baseline/bfs_cycle.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace csc {
namespace {

TEST(BfsCycleTest, PaperExample1) {
  // "There are three shortest cycles in Figure 2 with length 6 through v7."
  DiGraph g = Figure2Graph();
  CycleCount cc = BfsCountCycles(g, 6);  // v7
  EXPECT_EQ(cc.length, 6u);
  EXPECT_EQ(cc.count, 3u);
}

TEST(BfsCycleTest, Figure2AllVertices) {
  DiGraph g = Figure2Graph();
  // Hand-derived from the figure (v1..v10 are ids 0..9).
  const CycleCount expected[10] = {
      {6, 2},  // v1: via v4 and v5
      {6, 1},  // v2: v2->v4->v7->v8->v9->v10->v2
      {7, 1},  // v3: the v3->v6 detour adds one hop
      {6, 2},  // v4: closed via v1 or v2
      {6, 1},  // v5
      {7, 1},  // v6
      {6, 3},  // v7 (Example 1)
      {6, 3},  // v8: all three 6-cycles pass the v7..v10 chain
      {6, 3},  // v9
      {6, 3},  // v10
  };
  for (Vertex v = 0; v < 10; ++v) {
    EXPECT_EQ(BfsCountCycles(g, v), expected[v]) << "vertex " << v;
  }
}

TEST(BfsCycleTest, NoCycleMeansInfinity) {
  DiGraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  for (Vertex v = 0; v < 3; ++v) {
    CycleCount cc = BfsCountCycles(g, v);
    EXPECT_EQ(cc.length, kInfDist);
    EXPECT_EQ(cc.count, 0u);
  }
}

TEST(BfsCycleTest, TwoCycleIsCounted) {
  DiGraph g(2);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  EXPECT_EQ(BfsCountCycles(g, 0), (CycleCount{2, 1}));
  EXPECT_EQ(BfsCountCycles(g, 1), (CycleCount{2, 1}));
}

TEST(BfsCycleTest, ParallelShortestCyclesAccumulate) {
  // Two disjoint length-3 routes 0 -> x -> y -> 0.
  DiGraph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  g.AddEdge(0, 3);
  g.AddEdge(3, 4);
  g.AddEdge(4, 0);
  EXPECT_EQ(BfsCountCycles(g, 0), (CycleCount{3, 2}));
  EXPECT_EQ(BfsCountCycles(g, 1), (CycleCount{3, 1}));
}

TEST(BfsCycleTest, CounterReusableAcrossQueries) {
  DiGraph g = Figure2Graph();
  BfsCycleCounter counter(g);
  // Interleave queries; reused scratch must not leak state.
  EXPECT_EQ(counter.CountCycles(6), (CycleCount{6, 3}));
  EXPECT_EQ(counter.CountCycles(2), (CycleCount{7, 1}));
  EXPECT_EQ(counter.CountCycles(6), (CycleCount{6, 3}));
  EXPECT_EQ(counter.CountCycles(0), (CycleCount{6, 2}));
}

TEST(BfsCycleTest, MatchesNaiveDfsOnRandomGraphs) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    DiGraph g = RandomGraph(14, 2.2, seed);
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(BfsCountCycles(g, v), NaiveCountCyclesDfs(g, v))
          << "seed " << seed << " vertex " << v;
    }
  }
}

TEST(BfsCycleTest, DenseRandomGraphsMatchNaiveDfs) {
  for (uint64_t seed = 100; seed < 106; ++seed) {
    DiGraph g = RandomGraph(10, 4.0, seed);
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(BfsCountCycles(g, v), NaiveCountCyclesDfs(g, v))
          << "seed " << seed << " vertex " << v;
    }
  }
}

}  // namespace
}  // namespace csc
