#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "csc/csc_index.h"
#include "graph/cycle_enumeration.h"
#include "graph/ordering.h"
#include "tests/test_util.h"

namespace csc {
namespace {

// Checks that `cycle` is a simple directed cycle in `graph` starting with
// the edge (u, v).
void ExpectValidEdgeCycle(const DiGraph& graph, Vertex u, Vertex v,
                          const std::vector<Vertex>& cycle) {
  ASSERT_GE(cycle.size(), 2u);
  EXPECT_EQ(cycle[0], u);
  EXPECT_EQ(cycle[1], v);
  std::set<Vertex> distinct(cycle.begin(), cycle.end());
  EXPECT_EQ(distinct.size(), cycle.size()) << "repeated vertex";
  for (size_t i = 0; i + 1 < cycle.size(); ++i) {
    EXPECT_TRUE(graph.HasEdge(cycle[i], cycle[i + 1]))
        << cycle[i] << "->" << cycle[i + 1] << " missing";
  }
  EXPECT_TRUE(graph.HasEdge(cycle.back(), cycle.front()));
}

TEST(EdgeEnumerationTest, TwoCycle) {
  DiGraph graph(2);
  graph.AddEdge(0, 1);
  graph.AddEdge(1, 0);
  auto cycles = EnumerateShortestCyclesThroughEdge(graph, 0, 1, 10);
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0], (std::vector<Vertex>{0, 1}));
}

TEST(EdgeEnumerationTest, AbsentEdgeInvalidArgsAndNoReturnPath) {
  DiGraph graph(3);
  graph.AddEdge(0, 1);
  graph.AddEdge(1, 2);
  EXPECT_TRUE(EnumerateShortestCyclesThroughEdge(graph, 0, 2, 5).empty());
  EXPECT_TRUE(EnumerateShortestCyclesThroughEdge(graph, 1, 1, 5).empty());
  EXPECT_TRUE(EnumerateShortestCyclesThroughEdge(graph, 0, 99, 5).empty());
  EXPECT_TRUE(EnumerateShortestCyclesThroughEdge(graph, 0, 1, 0).empty());
  // Edge exists but nothing returns to 0.
  EXPECT_TRUE(EnumerateShortestCyclesThroughEdge(graph, 0, 1, 5).empty());
}

TEST(EdgeEnumerationTest, FunnelEdgeEnumeratesEveryRoute) {
  // criminal 0 -> mules {2,3,4} -> collector 1 -> 0: edge (1, 0) lies on
  // exactly three 3-cycles.
  DiGraph graph(5);
  for (Vertex mule : {2u, 3u, 4u}) {
    graph.AddEdge(0, mule);
    graph.AddEdge(mule, 1);
  }
  graph.AddEdge(1, 0);
  auto cycles = EnumerateShortestCyclesThroughEdge(graph, 1, 0, 10);
  ASSERT_EQ(cycles.size(), 3u);
  std::set<Vertex> mules;
  for (const auto& cycle : cycles) {
    ExpectValidEdgeCycle(graph, 1, 0, cycle);
    ASSERT_EQ(cycle.size(), 3u);
    mules.insert(cycle[2]);
  }
  EXPECT_EQ(mules, (std::set<Vertex>{2, 3, 4}));
}

TEST(EdgeEnumerationTest, CountMatchesIndexQueryOnRandomGraphs) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    DiGraph graph = RandomGraph(40, 2.5, seed + 600);
    CscIndex index = CscIndex::Build(graph, DegreeOrdering(graph));
    for (const Edge& e : graph.Edges()) {
      CycleCount expected = index.QueryThroughEdge(e.from, e.to);
      auto cycles =
          EnumerateShortestCyclesThroughEdge(graph, e.from, e.to, 100000);
      ASSERT_EQ(cycles.size(), expected.count)
          << "seed " << seed << " edge " << e.from << "->" << e.to;
      for (const auto& cycle : cycles) {
        ExpectValidEdgeCycle(graph, e.from, e.to, cycle);
        EXPECT_EQ(cycle.size(), expected.length);
      }
    }
  }
}

TEST(EdgeEnumerationTest, LimitTruncates) {
  // A funnel with 8 routes, limit 3.
  DiGraph graph(10);
  for (Vertex mule = 2; mule < 10; ++mule) {
    graph.AddEdge(0, mule);
    graph.AddEdge(mule, 1);
  }
  graph.AddEdge(1, 0);
  auto cycles = EnumerateShortestCyclesThroughEdge(graph, 1, 0, 3);
  EXPECT_EQ(cycles.size(), 3u);
}

}  // namespace
}  // namespace csc
