#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "baseline/bfs_cycle.h"
#include "graph/digraph.h"
#include "serving/admission.h"
#include "serving/engine.h"
#include "serving/sharded_engine.h"
#include "tests/test_util.h"
#include "util/failpoint.h"

// Overload-protection semantics end to end: the admission primitives
// (Deadline / RateLimiter / AdmissionQueue / CircuitBreaker) in isolation,
// write-side backpressure (backlog caps shed with kOverloaded or block to a
// deadline), read-side deadline propagation (typed partial results, never a
// silent short answer), breaker-metered degraded BFS serving, and the
// BeginDrain/FinishDrain lifecycle landing the admitted backlog
// bit-identically to a never-overloaded oracle. The TSan-filtered
// OverloadStressTest at the bottom proves the backlog bound under a writer
// flood with concurrent deadline'd readers.

namespace csc {
namespace {

using std::chrono::milliseconds;

class OverloadTest : public testing::Test {
 protected:
  void TearDown() override { Failpoints::Instance().ClearAll(); }

  void Arm(const std::string& site, FailpointMode mode, uint32_t countdown = 1,
           uint32_t delay_ms = 100) {
    FailpointAction action;
    action.mode = mode;
    action.countdown = countdown;
    action.delay_ms = delay_ms;
    Failpoints::Instance().Set(site, action);
  }
};

// A directed 12-cycle: every vertex lies on exactly one shortest cycle of
// length 12, so partial-sweep assertions have easy expected values.
DiGraph RingGraph(Vertex n) {
  std::vector<Edge> edges;
  for (Vertex v = 0; v < n; ++v) edges.push_back({v, (v + 1) % n});
  return DiGraph::FromEdges(n, edges);
}

TEST_F(OverloadTest, DeadlineBasics) {
  Deadline unbounded;
  EXPECT_TRUE(unbounded.unbounded());
  EXPECT_FALSE(unbounded.expired());
  EXPECT_EQ(unbounded.remaining(), milliseconds::max());

  Deadline past = Deadline::After(milliseconds(0));
  EXPECT_FALSE(past.unbounded());
  EXPECT_TRUE(past.expired());
  EXPECT_EQ(past.remaining(), milliseconds(0));

  Deadline ahead = Deadline::After(milliseconds(60'000));
  EXPECT_FALSE(ahead.expired());
  // Unexpired deadlines round their remainder up: always >= 1ms, so the
  // value can feed CondVar::WaitFor without a zero-wait busy loop.
  EXPECT_GE(ahead.remaining(), milliseconds(1));
  EXPECT_LE(ahead.remaining(), milliseconds(60'000));

  EXPECT_TRUE(Deadline::At(Deadline::Clock::now() - milliseconds(1)).expired());
}

TEST_F(OverloadTest, RateLimiterRefills) {
  // 10 tokens/s, burst 2: two immediate takes, then dry for ~100ms.
  RateLimiter limiter(10.0, 2.0);
  EXPECT_TRUE(limiter.TryAcquire());
  EXPECT_TRUE(limiter.TryAcquire());
  EXPECT_FALSE(limiter.TryAcquire());
  std::this_thread::sleep_for(milliseconds(150));
  EXPECT_TRUE(limiter.TryAcquire());  // ~1.5 tokens accrued
  EXPECT_LE(limiter.available(), 2.0);
}

TEST_F(OverloadTest, AdmissionQueueWatermarks) {
  AdmissionQueue queue(AdmissionQueueOptions{/*high_watermark=*/4,
                                             /*low_watermark=*/2});
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(queue.TryAcquire());
  EXPECT_EQ(queue.in_flight(), 4u);
  // Over the high mark: shed, and stay shedding until the low mark.
  EXPECT_FALSE(queue.TryAcquire());
  EXPECT_TRUE(queue.shedding());
  queue.Release();
  EXPECT_FALSE(queue.TryAcquire());  // 3 > low mark: hysteresis holds
  queue.Release();
  queue.Release();
  EXPECT_TRUE(queue.TryAcquire());  // drained to 1 <= 2: admitting again
  EXPECT_FALSE(queue.shedding());
  EXPECT_EQ(queue.admitted(), 5u);
  EXPECT_EQ(queue.shed(), 2u);
}

TEST_F(OverloadTest, AdmissionQueueBlocksUntilDeadline) {
  AdmissionQueue queue(AdmissionQueueOptions{/*high_watermark=*/1, 0});
  ASSERT_TRUE(queue.TryAcquire());
  // A releaser frees the slot while the acquirer blocks.
  std::thread releaser([&queue] {
    std::this_thread::sleep_for(milliseconds(50));
    queue.Release();
  });
  EXPECT_TRUE(queue.AcquireUntil(1, Deadline::After(milliseconds(5000))));
  releaser.join();
  EXPECT_EQ(queue.blocked(), 1u);
  // No releaser this time: the wait sheds at the deadline.
  EXPECT_FALSE(queue.AcquireUntil(1, Deadline::After(milliseconds(30))));
  EXPECT_EQ(queue.shed(), 1u);
  EXPECT_EQ(queue.in_flight(), 1u);
}

TEST_F(OverloadTest, CircuitBreakerTransitions) {
  CircuitBreakerOptions options;
  options.failure_threshold = 2;
  options.half_open_probes = 1;
  options.cooldown = milliseconds(50);
  CircuitBreaker breaker(options);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.Allow());

  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.transitions(), 1u);
  EXPECT_FALSE(breaker.Allow());  // cooldown still running

  std::this_thread::sleep_for(milliseconds(80));
  EXPECT_TRUE(breaker.Allow());  // the half-open probe
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.Allow());  // only one probe admitted
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.transitions(), 3u);

  // A failed probe reopens instead of closing.
  breaker.RecordFailure();
  breaker.RecordFailure();
  std::this_thread::sleep_for(milliseconds(80));
  EXPECT_TRUE(breaker.Allow());
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.transitions(), 6u);
  EXPECT_FALSE(breaker.Allow());
}

TEST_F(OverloadTest, BacklogCapRejectsWhenWorkerWedged) {
  EngineOptions options;
  options.backend = "frozen";
  options.async_updates = true;
  options.admission.max_pending_batches = 1;
  Engine engine(options);
  ASSERT_TRUE(engine.Build(Figure2Graph()));
  EXPECT_EQ(engine.Health(), HealthState::kHealthy);

  // Wedge the rebuild worker so batch 1 stays unlanded.
  Arm("engine.async_rebuild", FailpointMode::kDelay, 1, /*delay_ms=*/500);
  std::vector<UpdateVerdict> verdicts;
  EXPECT_EQ(engine.ApplyUpdates({EdgeUpdate::Insert(1, 0)}, &verdicts), 1u);
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_EQ(verdicts[0], UpdateVerdict::kApplied);
  EXPECT_EQ(engine.Health(), HealthState::kOverloaded);

  // Backlog at its cap: the next batch sheds before touching anything, and
  // its epoch token is the newest landed epoch (already resolved).
  uint64_t epoch = ~0ull;
  EXPECT_EQ(
      engine.ApplyUpdates({EdgeUpdate::Insert(2, 0)}, &verdicts, &epoch),
      0u);
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_EQ(verdicts[0], UpdateVerdict::kOverloaded);
  EXPECT_TRUE(engine.WaitForEpoch(epoch));
  EXPECT_EQ(engine.admission_stats().shed_batches, 1u);
  EXPECT_EQ(engine.repair_stats().shed_batches, 1u);

  engine.Drain();
  EXPECT_EQ(engine.Health(), HealthState::kHealthy);
  EXPECT_EQ(engine.ApplyUpdates({EdgeUpdate::Insert(2, 0)}, &verdicts), 1u);
  EXPECT_EQ(verdicts[0], UpdateVerdict::kApplied);
  engine.Drain();
  AdmissionStats stats = engine.admission_stats();
  EXPECT_EQ(stats.shed_batches, 1u);
  EXPECT_LE(stats.peak_pending_batches, 1u);
  EXPECT_EQ(stats.pending_ops, 0u);  // drained
}

TEST_F(OverloadTest, BacklogCapBlocksUntilDeadline) {
  EngineOptions options;
  options.backend = "frozen";
  options.async_updates = true;
  options.admission.max_pending_batches = 1;
  options.admission.block_on_full = true;
  Engine engine(options);
  ASSERT_TRUE(engine.Build(Figure2Graph()));

  Arm("engine.async_rebuild", FailpointMode::kDelay, 1, /*delay_ms=*/1000);
  std::vector<UpdateVerdict> verdicts;
  EXPECT_EQ(engine.ApplyUpdates({EdgeUpdate::Insert(1, 0)}, &verdicts), 1u);

  // A short deadline blocks, expires, sheds — the blocked counter only
  // tracks admissions that eventually succeeded.
  EXPECT_EQ(engine.ApplyUpdates({EdgeUpdate::Insert(2, 0)},
                                Deadline::After(milliseconds(50)), &verdicts),
            0u);
  EXPECT_EQ(verdicts[0], UpdateVerdict::kOverloaded);
  EXPECT_EQ(engine.admission_stats().shed_batches, 1u);
  EXPECT_EQ(engine.admission_stats().blocked_admissions, 0u);

  // A generous deadline rides out the wedge and admits.
  EXPECT_EQ(engine.ApplyUpdates({EdgeUpdate::Insert(2, 0)},
                                Deadline::After(milliseconds(30'000)),
                                &verdicts),
            1u);
  EXPECT_EQ(verdicts[0], UpdateVerdict::kApplied);
  EXPECT_EQ(engine.admission_stats().blocked_admissions, 1u);
  engine.Drain();
}

TEST_F(OverloadTest, AdmissionFailpointShedsDeterministically) {
  // The "admission.delay" site's error action is a forced shed: overload is
  // reproducible with no cap configured and no real backlog at all.
  EngineOptions options;
  options.backend = "frozen";
  options.async_updates = true;
  Engine engine(options);
  ASSERT_TRUE(engine.Build(Figure2Graph()));
  Arm("admission.delay", FailpointMode::kError);
  std::vector<UpdateVerdict> verdicts;
  EXPECT_EQ(engine.ApplyUpdates({EdgeUpdate::Insert(1, 0)}, &verdicts), 0u);
  EXPECT_EQ(verdicts[0], UpdateVerdict::kOverloaded);
  EXPECT_EQ(engine.admission_stats().shed_batches, 1u);
  // The fired site disarmed itself: the retry admits.
  EXPECT_EQ(engine.ApplyUpdates({EdgeUpdate::Insert(1, 0)}, &verdicts), 1u);
  EXPECT_EQ(verdicts[0], UpdateVerdict::kApplied);
  engine.Drain();
}

TEST_F(OverloadTest, PartialBatchQueryUnderDeadline) {
  EngineOptions options;
  options.num_threads = 1;  // sequential chunks: the partial is a prefix
  options.batch_grain = 4;
  Engine engine(options);
  ASSERT_TRUE(engine.Build(RingGraph(12)));
  std::vector<Vertex> all(12);
  for (Vertex v = 0; v < 12; ++v) all[v] = v;
  const std::vector<CycleCount> full = engine.BatchQuery(all);

  // Expired before the first chunk: typed timeout, zero work claimed.
  QueryOptions expired;
  expired.deadline = Deadline::After(milliseconds(0));
  BatchQueryResult result = engine.BatchQuery(all, expired);
  EXPECT_EQ(result.status, QueryStatus::kTimeout);
  EXPECT_EQ(result.completed, 0u);

  // Deterministic mid-batch expiry: the budget probe passes once (chunk
  // [0,4) completes), then fires — exactly one chunk of work is reported.
  Arm("engine.query_deadline", FailpointMode::kError, /*countdown=*/2);
  result = engine.BatchQuery(all, QueryOptions{});
  EXPECT_EQ(result.status, QueryStatus::kTimeout);
  ASSERT_EQ(result.completed, 4u);
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(result.answered[i] != 0, i < 4) << i;
    if (i < 4) {
      EXPECT_EQ(result.counts[i], full[i]) << i;
    }
  }
  EXPECT_GE(engine.admission_stats().query_timeouts, 2u);

  // Unbounded budget, no failpoint: identical to the budget-free API.
  result = engine.BatchQuery(all, QueryOptions{});
  EXPECT_EQ(result.status, QueryStatus::kOk);
  EXPECT_EQ(result.completed, all.size());
  EXPECT_EQ(result.counts, full);

  QueryResult single = engine.Query(3, QueryOptions{});
  EXPECT_EQ(single.status, QueryStatus::kOk);
  EXPECT_EQ(single.count, full[3]);
  EXPECT_EQ(engine.Query(3, expired).status, QueryStatus::kTimeout);

  GirthResult girth = engine.Girth(QueryOptions{});
  EXPECT_EQ(girth.status, QueryStatus::kOk);
  EXPECT_EQ(girth.scanned, 12u);
  GirthInfo oracle = engine.Girth();
  EXPECT_EQ(girth.info.girth, oracle.girth);
  EXPECT_EQ(girth.info.num_girth_vertices, oracle.num_girth_vertices);
  EXPECT_EQ(girth.info.example_vertex, oracle.example_vertex);
}

TEST_F(OverloadTest, ShardedDeadlineSweepsMatchBudgetFree) {
  ShardedEngineOptions options;
  options.backend = "frozen";
  options.num_shards = 2;
  ShardedEngine engine(options);
  DiGraph graph = RandomGraph(40, 2.0, 11);
  ASSERT_TRUE(engine.Build(graph));

  BatchQueryResult sweep = engine.QueryAll(QueryOptions{});
  EXPECT_EQ(sweep.status, QueryStatus::kOk);
  EXPECT_EQ(sweep.completed, engine.num_vertices());
  EXPECT_EQ(sweep.counts, engine.QueryAll());

  GirthResult girth = engine.Girth(QueryOptions{});
  GirthInfo oracle = engine.Girth();
  EXPECT_EQ(girth.status, QueryStatus::kOk);
  EXPECT_EQ(girth.info.girth, oracle.girth);
  EXPECT_EQ(girth.info.num_girth_vertices, oracle.num_girth_vertices);
  EXPECT_EQ(girth.info.example_vertex, oracle.example_vertex);

  ScreenResult screen = engine.Screen(10, 5, QueryOptions{});
  std::vector<ScreeningHit> expected = engine.Screen(10, 5);
  EXPECT_EQ(screen.status, QueryStatus::kOk);
  ASSERT_EQ(screen.hits.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(screen.hits[i].vertex, expected[i].vertex) << i;
  }

  // An expired shared deadline: typed partial from the fan-out.
  QueryOptions expired;
  expired.deadline = Deadline::After(milliseconds(0));
  EXPECT_EQ(engine.QueryAll(expired).status, QueryStatus::kTimeout);
}

TEST_F(OverloadTest, DrainRejectsWritesLandsBacklog) {
  EngineOptions options;
  options.backend = "frozen";
  options.async_updates = true;
  Engine engine(options);
  DiGraph graph = Figure2Graph();
  ASSERT_TRUE(engine.Build(graph));

  // Batch 1 is admitted, then the drain begins while it is still unlanded.
  Arm("engine.async_rebuild", FailpointMode::kDelay, 1, /*delay_ms=*/300);
  const std::vector<EdgeUpdate> admitted = {EdgeUpdate::Insert(1, 0),
                                            EdgeUpdate::Remove(0, 2)};
  std::vector<UpdateVerdict> verdicts;
  EXPECT_EQ(engine.ApplyUpdates(admitted, &verdicts), 2u);

  EXPECT_TRUE(engine.BeginDrain());
  EXPECT_FALSE(engine.BeginDrain());  // already draining
  EXPECT_EQ(engine.Health(), HealthState::kDraining);
  EXPECT_TRUE(engine.draining());

  // New writes shed at the door; the admitted backlog still lands.
  EXPECT_EQ(engine.ApplyUpdates({EdgeUpdate::Insert(2, 0)}, &verdicts), 0u);
  EXPECT_EQ(verdicts[0], UpdateVerdict::kOverloaded);
  EXPECT_EQ(engine.Drain(milliseconds(30'000)), WaitStatus::kLanded);

  // Bit-identical to the never-overloaded oracle over the admitted batch.
  EngineOptions sync_options;
  sync_options.backend = "frozen";
  Engine oracle(sync_options);
  ASSERT_TRUE(oracle.Build(graph));
  EXPECT_EQ(oracle.ApplyUpdates(admitted), 2u);
  std::string drained_bytes, oracle_bytes;
  ASSERT_TRUE(engine.SaveTo(drained_bytes));
  ASSERT_TRUE(oracle.SaveTo(oracle_bytes));
  EXPECT_EQ(drained_bytes, oracle_bytes);

  engine.FinishDrain();
  EXPECT_EQ(engine.Health(), HealthState::kHealthy);
  EXPECT_EQ(engine.admission_stats().drains, 1u);
  EXPECT_EQ(engine.ApplyUpdates({EdgeUpdate::Insert(2, 0)}, &verdicts), 1u);
  EXPECT_EQ(verdicts[0], UpdateVerdict::kApplied);
  engine.Drain();
}

TEST_F(OverloadTest, HealthLifecycle) {
  Engine engine(EngineOptions{});
  EXPECT_EQ(engine.Health(), HealthState::kStarting);
  ASSERT_TRUE(engine.Build(Figure2Graph()));
  EXPECT_EQ(engine.Health(), HealthState::kHealthy);
}

TEST_F(OverloadTest, ShardedDrainLifecycle) {
  ShardedEngineOptions options;
  options.backend = "frozen";
  options.num_shards = 2;
  options.async_updates = true;
  ShardedEngine engine(options);
  ASSERT_TRUE(engine.Build(Figure2Graph()));
  EXPECT_EQ(engine.Health(), HealthState::kHealthy);

  EXPECT_TRUE(engine.BeginDrain());
  EXPECT_EQ(engine.Health(), HealthState::kDraining);
  // Draining shards shed the whole batch (all-or-nothing admission).
  std::vector<uint64_t> epochs;
  EXPECT_EQ(engine.ApplyUpdates({EdgeUpdate::Insert(1, 0)}, &epochs), 0u);
  EXPECT_EQ(engine.Drain(milliseconds(30'000)), WaitStatus::kLanded);
  engine.FinishDrain();
  EXPECT_EQ(engine.Health(), HealthState::kHealthy);
  EXPECT_GE(engine.AdmissionStatsTotal().shed_batches, 1u);
  EXPECT_EQ(engine.ApplyUpdates({EdgeUpdate::Insert(1, 0)}, &epochs), 1u);
  engine.Drain();
}

TEST_F(OverloadTest, BreakerMetersDegradedBfsFallback) {
  DiGraph graph = RandomGraph(40, 2.0, 3);
  ShardedEngineOptions options;
  options.backend = "frozen";
  options.num_shards = 2;
  ShardedEngine builder(options);
  ASSERT_TRUE(builder.Build(graph));
  std::string bundle;
  ASSERT_TRUE(builder.SaveTo(bundle));

  ShardedEngineOptions tolerant = options;
  tolerant.tolerate_faults = true;
  tolerant.degraded.breaker.failure_threshold = 3;
  tolerant.degraded.breaker.cooldown = milliseconds(100);
  tolerant.degraded.max_concurrent_fallbacks = 4;
  Arm("sharded.load_shard", FailpointMode::kError, /*countdown=*/1);
  ShardedEngine degraded(tolerant);
  std::string error;
  ASSERT_TRUE(degraded.LoadFrom(bundle, &error)) << error;
  Failpoints::Instance().ClearAll();
  ASSERT_EQ(degraded.shard_state(0), ShardState::kQuarantined);
  degraded.SetFallbackGraph(graph);
  ASSERT_EQ(degraded.shard_state(0), ShardState::kDegraded);
  EXPECT_EQ(degraded.Health(), HealthState::kDegraded);

  Vertex v0 = 0;
  ASSERT_EQ(degraded.ShardOf(v0), 0u);
  QueryOptions expired;
  expired.deadline = Deadline::After(milliseconds(0));

  // Three deadline misses trip the breaker open.
  for (int i = 0; i < 3; ++i) {
    ShardedQueryResult result = degraded.QueryWithStatus(v0, expired);
    EXPECT_EQ(result.status, QueryStatus::kTimeout) << i;
    EXPECT_EQ(result.served_by, ShardState::kDegraded) << i;
  }
  DegradedStats stats = degraded.degraded_stats();
  EXPECT_EQ(stats.breaker_state, CircuitBreaker::State::kOpen);
  EXPECT_EQ(stats.fallback_timeouts, 3u);

  // Open breaker: even a generous deadline is shed, cheaply.
  QueryOptions generous;
  generous.deadline = Deadline::After(milliseconds(30'000));
  ShardedQueryResult shed = degraded.QueryWithStatus(v0, generous);
  EXPECT_EQ(shed.status, QueryStatus::kShed);
  EXPECT_EQ(shed.count.count, 0u);
  EXPECT_GE(degraded.degraded_stats().fallback_shed, 1u);

  // After the cooldown the half-open probe succeeds and closes the breaker;
  // the answer is the exact BFS count.
  std::this_thread::sleep_for(milliseconds(150));
  ShardedQueryResult answered = degraded.QueryWithStatus(v0, generous);
  EXPECT_EQ(answered.status, QueryStatus::kOk);
  EXPECT_EQ(answered.count, BfsCountCycles(graph, v0));
  stats = degraded.degraded_stats();
  EXPECT_EQ(stats.breaker_state, CircuitBreaker::State::kClosed);
  EXPECT_GE(stats.breaker_transitions, 3u);
  EXPECT_GE(stats.fallback_queries, 5u);

  // The healthy shard is untouched by the breaker.
  Vertex v1 = kNoVertex;
  for (Vertex v = 0; v < degraded.num_vertices(); ++v) {
    if (degraded.ShardOf(v) == 1) {
      v1 = v;
      break;
    }
  }
  ASSERT_NE(v1, kNoVertex);
  ShardedQueryResult healthy = degraded.QueryWithStatus(v1, generous);
  EXPECT_EQ(healthy.status, QueryStatus::kOk);
  EXPECT_EQ(healthy.served_by, ShardState::kHealthy);
}

// TSan-filtered stress scenario (see .github/workflows/ci.yml): a writer
// floods single-edge toggle batches against a capped backlog while
// deadline'd readers sweep concurrently. Proves (a) the backlog never
// exceeds its cap, (b) every reader gets a full answer or a typed
// kTimeout — never a hang, crash, or silent partial — and (c) the drained
// state is byte-identical to a never-overloaded oracle over exactly the
// admitted batches.
class OverloadStressTest : public testing::Test {
 protected:
  void TearDown() override { Failpoints::Instance().ClearAll(); }

  void Arm(const std::string& site, FailpointMode mode, uint32_t countdown = 1,
           uint32_t delay_ms = 100) {
    FailpointAction action;
    action.mode = mode;
    action.countdown = countdown;
    action.delay_ms = delay_ms;
    Failpoints::Instance().Set(site, action);
  }
};

TEST_F(OverloadStressTest, WriterFloodKeepsBacklogBounded) {
  DiGraph graph = RandomGraph(60, 2.0, 7);
  EngineOptions options;
  options.backend = "frozen";
  options.async_updates = true;
  options.admission.max_pending_batches = 4;
  Engine engine(options);
  ASSERT_TRUE(engine.Build(graph));

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reader_violations{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      std::vector<Vertex> all(graph.num_vertices());
      for (Vertex v = 0; v < graph.num_vertices(); ++v) all[v] = v;
      while (!stop.load(std::memory_order_relaxed)) {
        QueryOptions budget;
        budget.deadline = Deadline::After(milliseconds(5));
        BatchQueryResult result = engine.BatchQuery(all, budget);
        if (result.status == QueryStatus::kOk) {
          if (result.completed != all.size()) ++reader_violations;
        } else if (result.status == QueryStatus::kTimeout) {
          if (result.completed > all.size()) ++reader_violations;
        } else {
          ++reader_violations;  // kShed never comes from a healthy engine
        }
      }
    });
  }

  // Writer flood: 200 single-edge toggles against the capped backlog. Every
  // admitted toggle is mirrored into the shadow graph; shed batches leave
  // no trace (that is the property under test). The first rebuild is wedged
  // so the flood genuinely saturates the cap — without it, rebuilds of a
  // graph this small land faster than the flood offers work.
  Arm("engine.async_rebuild", FailpointMode::kDelay, 1, /*delay_ms=*/50);
  DiGraph shadow = graph;
  std::vector<std::vector<EdgeUpdate>> admitted;
  uint64_t shed = 0;
  uint64_t lcg = 42;
  for (int i = 0; i < 200; ++i) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    Vertex a = static_cast<Vertex>((lcg >> 33) % graph.num_vertices());
    Vertex b = static_cast<Vertex>((lcg >> 13) % graph.num_vertices());
    if (a == b) b = (b + 1) % graph.num_vertices();
    const bool present = shadow.HasEdge(a, b);
    std::vector<EdgeUpdate> batch = {present ? EdgeUpdate::Remove(a, b)
                                             : EdgeUpdate::Insert(a, b)};
    std::vector<UpdateVerdict> verdicts;
    engine.ApplyUpdates(batch, &verdicts);
    ASSERT_EQ(verdicts.size(), 1u);
    if (verdicts[0] == UpdateVerdict::kApplied) {
      if (present) {
        shadow.RemoveEdge(a, b);
      } else {
        shadow.AddEdge(a, b);
      }
      admitted.push_back(batch);
    } else {
      ASSERT_EQ(verdicts[0], UpdateVerdict::kOverloaded);
      ++shed;
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& reader : readers) reader.join();
  engine.Drain();

  EXPECT_EQ(reader_violations.load(), 0u);
  AdmissionStats stats = engine.admission_stats();
  EXPECT_LE(stats.peak_pending_batches,
            options.admission.max_pending_batches);
  EXPECT_EQ(stats.shed_batches, shed);
  EXPECT_GT(shed, 0u);  // the wedge guarantees real overload was exercised
  EXPECT_EQ(admitted.size() + shed, 200u);
  EXPECT_EQ(stats.pending_batches, 0u);

  // Never-overloaded oracle: a synchronous engine applies exactly the
  // admitted batches in admission order. Drained state must match byte for
  // byte.
  EngineOptions sync_options;
  sync_options.backend = "frozen";
  Engine oracle(sync_options);
  ASSERT_TRUE(oracle.Build(graph));
  for (const auto& batch : admitted) {
    ASSERT_EQ(oracle.ApplyUpdates(batch), 1u);
  }
  std::string flooded_bytes, oracle_bytes;
  ASSERT_TRUE(engine.SaveTo(flooded_bytes));
  ASSERT_TRUE(oracle.SaveTo(oracle_bytes));
  EXPECT_EQ(flooded_bytes, oracle_bytes);
}

}  // namespace
}  // namespace csc
