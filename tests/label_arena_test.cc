#include "core/label_arena.h"

#include <gtest/gtest.h>

#include <vector>

#include "labeling/hub_labeling.h"
#include "util/random.h"

namespace csc {
namespace {

// Deterministic random label sets with ascending hub ranks, realistic small
// distances, and mostly-1 counts.
std::vector<LabelSet> RandomLabelSets(Vertex n, uint64_t seed) {
  Rng rng(seed);
  std::vector<LabelSet> sets(n);
  for (Vertex v = 0; v < n; ++v) {
    Rank rank = 0;
    size_t entries = rng.NextBounded(8);  // some vertices stay empty
    for (size_t i = 0; i < entries; ++i) {
      rank += 1 + static_cast<Rank>(rng.NextBounded(50));
      auto dist = static_cast<Dist>(rng.NextBounded(12));
      auto count = static_cast<Count>(1 + rng.NextBounded(4));
      sets[v].Append(LabelEntry(rank, dist, count));
    }
  }
  return sets;
}

class LabelArenaEncodingTest : public ::testing::TestWithParam<ArenaEncoding> {
};

TEST_P(LabelArenaEncodingTest, RoundTripsLabelSets) {
  std::vector<LabelSet> sets = RandomLabelSets(40, 7);
  LabelArena arena = LabelArena::FromLabelSets(sets, GetParam());
  ASSERT_EQ(arena.num_vertices(), 40u);
  uint64_t expected_entries = 0;
  for (Vertex v = 0; v < 40; ++v) {
    EXPECT_EQ(arena.DecodeRun(v), sets[v]) << "vertex " << v;
    EXPECT_EQ(arena.RunSize(v), sets[v].size());
    expected_entries += sets[v].size();
  }
  EXPECT_EQ(arena.total_entries(), expected_entries);
}

TEST_P(LabelArenaEncodingTest, JoinMatchesJoinLabels) {
  std::vector<LabelSet> outs = RandomLabelSets(30, 11);
  std::vector<LabelSet> ins = RandomLabelSets(30, 13);
  LabelArena out_arena = LabelArena::FromLabelSets(outs, GetParam());
  LabelArena in_arena = LabelArena::FromLabelSets(ins, GetParam());
  for (Vertex s = 0; s < 30; ++s) {
    for (Vertex t = 0; t < 30; t += 3) {
      EXPECT_EQ(LabelArena::Join(out_arena, s, in_arena, t),
                JoinLabels(outs[s], ins[t]))
          << "s=" << s << " t=" << t;
    }
  }
}

TEST_P(LabelArenaEncodingTest, FindHubMatchesLabelSetFind) {
  std::vector<LabelSet> sets = RandomLabelSets(25, 17);
  LabelArena arena = LabelArena::FromLabelSets(sets, GetParam());
  for (Vertex v = 0; v < 25; ++v) {
    for (Rank r = 0; r < 300; r += 7) {
      const LabelEntry* expected = sets[v].Find(r);
      auto actual = arena.FindHub(v, r);
      if (expected == nullptr) {
        EXPECT_FALSE(actual.has_value()) << "v=" << v << " r=" << r;
      } else {
        ASSERT_TRUE(actual.has_value()) << "v=" << v << " r=" << r;
        EXPECT_EQ(actual->first, expected->dist());
        EXPECT_EQ(actual->second, expected->count());
      }
    }
  }
}

TEST_P(LabelArenaEncodingTest, SerializationRoundTrips) {
  std::vector<LabelSet> sets = RandomLabelSets(32, 23);
  LabelArena arena = LabelArena::FromLabelSets(sets, GetParam());
  std::string bytes;
  arena.AppendTo(bytes);
  size_t pos = 0;
  auto parsed = LabelArena::Parse(bytes, pos);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(pos, bytes.size());
  EXPECT_EQ(*parsed, arena);
}

TEST_P(LabelArenaEncodingTest, ParseRejectsTruncation) {
  LabelArena arena =
      LabelArena::FromLabelSets(RandomLabelSets(16, 29), GetParam());
  std::string bytes;
  arena.AppendTo(bytes);
  for (size_t cut = 0; cut + 1 < bytes.size(); cut += 9) {
    std::string truncated = bytes.substr(0, cut);
    size_t pos = 0;
    EXPECT_FALSE(LabelArena::Parse(truncated, pos).has_value())
        << "cut=" << cut;
  }
}

INSTANTIATE_TEST_SUITE_P(Encodings, LabelArenaEncodingTest,
                         ::testing::Values(ArenaEncoding::kPacked,
                                           ArenaEncoding::kVarint),
                         [](const auto& info) {
                           return info.param == ArenaEncoding::kPacked
                                      ? "Packed"
                                      : "Varint";
                         });

TEST(LabelArenaTest, ParseRejectsOversizedVertexCountWithoutAllocating) {
  // A crafted header claiming 2^32-1 vertices in a 5-byte payload must be
  // rejected as malformed, not sized into a giant offsets table.
  std::string evil = {'\x00', '\xff', '\xff', '\xff', '\xff'};
  size_t pos = 0;
  EXPECT_FALSE(LabelArena::Parse(evil, pos).has_value());
  // Same with a run length that overflows the offset arithmetic.
  std::string big_run = {'\x00', '\x01', '\x00', '\x00', '\x00',
                         '\xff', '\xff', '\xff', '\xff', '\xff',
                         '\xff', '\xff', '\xff', '\xff', '\x01'};
  pos = 0;
  EXPECT_FALSE(LabelArena::Parse(big_run, pos).has_value());
}

TEST(LabelArenaTest, PackedAndVarintAgreeOnEveryJoin) {
  std::vector<LabelSet> outs = RandomLabelSets(20, 31);
  std::vector<LabelSet> ins = RandomLabelSets(20, 37);
  LabelArena packed_out =
      LabelArena::FromLabelSets(outs, ArenaEncoding::kPacked);
  LabelArena packed_in = LabelArena::FromLabelSets(ins, ArenaEncoding::kPacked);
  LabelArena varint_out =
      LabelArena::FromLabelSets(outs, ArenaEncoding::kVarint);
  LabelArena varint_in = LabelArena::FromLabelSets(ins, ArenaEncoding::kVarint);
  for (Vertex s = 0; s < 20; ++s) {
    for (Vertex t = 0; t < 20; ++t) {
      JoinResult expected = LabelArena::Join(packed_out, s, packed_in, t);
      EXPECT_EQ(LabelArena::Join(varint_out, s, varint_in, t), expected);
      // Mixed encodings route through the cursor merge.
      EXPECT_EQ(LabelArena::Join(packed_out, s, varint_in, t), expected);
      EXPECT_EQ(LabelArena::Join(varint_out, s, packed_in, t), expected);
    }
  }
}

TEST(LabelArenaTest, VarintIsSmallerOnRealisticLabels) {
  std::vector<LabelSet> sets = RandomLabelSets(200, 41);
  LabelArena packed = LabelArena::FromLabelSets(sets, ArenaEncoding::kPacked);
  LabelArena varint = LabelArena::FromLabelSets(sets, ArenaEncoding::kVarint);
  ASSERT_GT(packed.total_entries(), 0u);
  EXPECT_EQ(packed.BytesPerEntry(), 8.0);
  EXPECT_LT(varint.SizeBytes(), packed.SizeBytes());
  EXPECT_EQ(varint.total_entries(), packed.total_entries());
}

TEST(LabelArenaTest, EmptyArena) {
  LabelArena arena;
  EXPECT_EQ(arena.num_vertices(), 0u);
  EXPECT_EQ(arena.total_entries(), 0u);
  EXPECT_EQ(arena.SizeBytes(), 0u);
  LabelArena built = LabelArena::FromLabelSets({}, ArenaEncoding::kPacked);
  EXPECT_EQ(built.num_vertices(), 0u);
  std::string bytes;
  built.AppendTo(bytes);
  size_t pos = 0;
  auto parsed = LabelArena::Parse(bytes, pos);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->num_vertices(), 0u);
}

}  // namespace
}  // namespace csc
