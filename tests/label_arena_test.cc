#include "core/label_arena.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "labeling/hub_labeling.h"
#include "util/random.h"

namespace csc {
namespace {

// Deterministic random label sets with ascending hub ranks, realistic small
// distances, and mostly-1 counts.
std::vector<LabelSet> RandomLabelSets(Vertex n, uint64_t seed) {
  Rng rng(seed);
  std::vector<LabelSet> sets(n);
  for (Vertex v = 0; v < n; ++v) {
    Rank rank = 0;
    size_t entries = rng.NextBounded(8);  // some vertices stay empty
    for (size_t i = 0; i < entries; ++i) {
      rank += 1 + static_cast<Rank>(rng.NextBounded(50));
      auto dist = static_cast<Dist>(rng.NextBounded(12));
      auto count = static_cast<Count>(1 + rng.NextBounded(4));
      sets[v].Append(LabelEntry(rank, dist, count));
    }
  }
  return sets;
}

class LabelArenaEncodingTest : public ::testing::TestWithParam<ArenaEncoding> {
};

TEST_P(LabelArenaEncodingTest, RoundTripsLabelSets) {
  std::vector<LabelSet> sets = RandomLabelSets(40, 7);
  LabelArena arena = LabelArena::FromLabelSets(sets, GetParam());
  ASSERT_EQ(arena.num_vertices(), 40u);
  uint64_t expected_entries = 0;
  for (Vertex v = 0; v < 40; ++v) {
    EXPECT_EQ(arena.DecodeRun(v), sets[v]) << "vertex " << v;
    EXPECT_EQ(arena.RunSize(v), sets[v].size());
    expected_entries += sets[v].size();
  }
  EXPECT_EQ(arena.total_entries(), expected_entries);
}

TEST_P(LabelArenaEncodingTest, JoinMatchesJoinLabels) {
  std::vector<LabelSet> outs = RandomLabelSets(30, 11);
  std::vector<LabelSet> ins = RandomLabelSets(30, 13);
  LabelArena out_arena = LabelArena::FromLabelSets(outs, GetParam());
  LabelArena in_arena = LabelArena::FromLabelSets(ins, GetParam());
  for (Vertex s = 0; s < 30; ++s) {
    for (Vertex t = 0; t < 30; t += 3) {
      EXPECT_EQ(LabelArena::Join(out_arena, s, in_arena, t),
                JoinLabels(outs[s], ins[t]))
          << "s=" << s << " t=" << t;
    }
  }
}

TEST_P(LabelArenaEncodingTest, FindHubMatchesLabelSetFind) {
  std::vector<LabelSet> sets = RandomLabelSets(25, 17);
  LabelArena arena = LabelArena::FromLabelSets(sets, GetParam());
  for (Vertex v = 0; v < 25; ++v) {
    for (Rank r = 0; r < 300; r += 7) {
      const LabelEntry* expected = sets[v].Find(r);
      auto actual = arena.FindHub(v, r);
      if (expected == nullptr) {
        EXPECT_FALSE(actual.has_value()) << "v=" << v << " r=" << r;
      } else {
        ASSERT_TRUE(actual.has_value()) << "v=" << v << " r=" << r;
        EXPECT_EQ(actual->first, expected->dist());
        EXPECT_EQ(actual->second, expected->count());
      }
    }
  }
}

TEST_P(LabelArenaEncodingTest, SerializationRoundTrips) {
  std::vector<LabelSet> sets = RandomLabelSets(32, 23);
  LabelArena arena = LabelArena::FromLabelSets(sets, GetParam());
  std::string bytes;
  arena.AppendTo(bytes);
  size_t pos = 0;
  auto parsed = LabelArena::Parse(bytes, pos);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(pos, bytes.size());
  EXPECT_EQ(*parsed, arena);
}

TEST_P(LabelArenaEncodingTest, ParseRejectsTruncation) {
  LabelArena arena =
      LabelArena::FromLabelSets(RandomLabelSets(16, 29), GetParam());
  std::string bytes;
  arena.AppendTo(bytes);
  for (size_t cut = 0; cut + 1 < bytes.size(); cut += 9) {
    std::string truncated = bytes.substr(0, cut);
    size_t pos = 0;
    EXPECT_FALSE(LabelArena::Parse(truncated, pos).has_value())
        << "cut=" << cut;
  }
}

INSTANTIATE_TEST_SUITE_P(Encodings, LabelArenaEncodingTest,
                         ::testing::Values(ArenaEncoding::kPacked,
                                           ArenaEncoding::kVarint),
                         [](const auto& info) {
                           return info.param == ArenaEncoding::kPacked
                                      ? "Packed"
                                      : "Varint";
                         });

// Label sets of `entries` ranks spread across a shared `universe`, so runs
// of very different lengths still interleave end to end — the shapes that
// cross the join kernel's dispatch cutoffs (linear / SIMD merge / gallop).
LabelSet SpanningSet(size_t entries, Rank universe, uint64_t seed) {
  Rng rng(seed);
  LabelSet labels;
  Rank stride = entries == 0 ? 1 : universe / static_cast<Rank>(entries);
  if (stride < 1) stride = 1;
  Rank rank = 0;
  for (size_t i = 0; i < entries; ++i) {
    rank += 1 + static_cast<Rank>(rng.NextBounded(2 * stride - 1));
    labels.Append(LabelEntry(rank, static_cast<Dist>(rng.NextBounded(12)),
                             1 + rng.NextBounded(4)));
  }
  return labels;
}

TEST(LabelArenaJoinKernelTest, AllKernelsAgreeAcrossSkews) {
  // Sizes straddling every dispatch boundary: below kGallopMinLongerRun,
  // at the SIMD skew cutoff, past the gallop cutoff, plus empty runs.
  const size_t sizes[] = {0, 1, 3, 15, 63, 64, 192, 512, 2048};
  int pair_index = 0;
  for (size_t na : sizes) {
    for (size_t nb : sizes) {
      Rank universe = static_cast<Rank>(4 * (na > nb ? na : nb) + 4);
      LabelSet a_set = SpanningSet(na, universe, 101 + pair_index);
      LabelSet b_set = SpanningSet(nb, universe, 207 + pair_index);
      ++pair_index;
      LabelArena a =
          LabelArena::FromLabelSets({a_set}, ArenaEncoding::kPacked);
      LabelArena b =
          LabelArena::FromLabelSets({b_set}, ArenaEncoding::kPacked);
      JoinResult expected = JoinLabels(a_set, b_set);
      EXPECT_EQ(LabelArena::JoinLinear(a, 0, b, 0), expected)
          << "na=" << na << " nb=" << nb;
      EXPECT_EQ(LabelArena::Join(a, 0, b, 0), expected)
          << "na=" << na << " nb=" << nb;
      EXPECT_EQ(LabelArena::Join(b, 0, a, 0), expected)
          << "swapped na=" << na << " nb=" << nb;
    }
  }
}

TEST(LabelArenaJoinKernelTest, SkewedKernelsHandleDegenerateOverlaps) {
  // Identical runs (every rank matches), disjoint rank ranges (long run
  // entirely above / below the short one), and a single common hub at the
  // very end — the galloping path's corner geometries.
  LabelSet small;
  for (Rank r = 5000; r < 5016; ++r) small.Append(LabelEntry(r, 2, 1));
  LabelSet identical = small;
  LabelSet below;
  for (Rank r = 0; r < 1024; ++r) below.Append(LabelEntry(r, 3, 2));
  LabelSet above;
  for (Rank r = 10000; r < 11024; ++r) above.Append(LabelEntry(r, 4, 1));
  LabelSet tail = below;
  tail.Append(LabelEntry(5015, 7, 3));  // one hit, last entry of `small`
  for (const LabelSet& other : {identical, below, above, tail}) {
    LabelArena a = LabelArena::FromLabelSets({small}, ArenaEncoding::kPacked);
    LabelArena b = LabelArena::FromLabelSets({other}, ArenaEncoding::kPacked);
    JoinResult expected = JoinLabels(small, other);
    EXPECT_EQ(LabelArena::Join(a, 0, b, 0), expected);
    EXPECT_EQ(LabelArena::Join(b, 0, a, 0), expected);
    EXPECT_EQ(LabelArena::JoinLinear(a, 0, b, 0), expected);
  }
}

class LabelArenaViewTest : public ::testing::TestWithParam<ArenaEncoding> {};

TEST_P(LabelArenaViewTest, ParseViewMatchesParseAndOwnedArena) {
  std::vector<LabelSet> sets = RandomLabelSets(40, 53);
  LabelArena arena = LabelArena::FromLabelSets(sets, GetParam());
  auto bytes = std::make_shared<std::string>();
  arena.AppendTo(*bytes);
  size_t pos = 0;
  auto parsed = LabelArena::Parse(*bytes, pos);
  ASSERT_TRUE(parsed.has_value());
  pos = 0;
  auto view = LabelArena::ParseView(
      reinterpret_cast<const uint8_t*>(bytes->data()), bytes->size(), pos,
      bytes);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(pos, bytes->size());
  EXPECT_TRUE(view->is_view());
  EXPECT_FALSE(parsed->is_view());
  EXPECT_EQ(*view, arena);
  EXPECT_EQ(*view, *parsed);
  EXPECT_EQ(view->total_entries(), arena.total_entries());
  EXPECT_LT(view->OwnedBytes(), view->MemoryBytes());
  for (Vertex v = 0; v < arena.num_vertices(); ++v) {
    EXPECT_EQ(view->DecodeRun(v), sets[v]) << "vertex " << v;
    EXPECT_EQ(LabelArena::Join(*view, v, arena, v),
              LabelArena::Join(arena, v, arena, v));
  }
  // Serializing a view reproduces the original wire bytes.
  std::string reserialized;
  view->AppendTo(reserialized);
  EXPECT_EQ(reserialized, *bytes);
}

TEST_P(LabelArenaViewTest, ParseViewRejectsTruncation) {
  LabelArena arena =
      LabelArena::FromLabelSets(RandomLabelSets(16, 59), GetParam());
  std::string bytes;
  arena.AppendTo(bytes);
  for (size_t cut = 0; cut + 1 < bytes.size(); cut += 7) {
    size_t pos = 0;
    EXPECT_FALSE(LabelArena::ParseView(
                     reinterpret_cast<const uint8_t*>(bytes.data()), cut, pos,
                     nullptr)
                     .has_value())
        << "cut=" << cut;
  }
}

TEST_P(LabelArenaViewTest, ViewOutlivesTheOriginalHandle) {
  std::vector<LabelSet> sets = RandomLabelSets(10, 61);
  LabelArena arena = LabelArena::FromLabelSets(sets, GetParam());
  auto bytes = std::make_shared<std::string>();
  arena.AppendTo(*bytes);
  size_t pos = 0;
  auto view = LabelArena::ParseView(
      reinterpret_cast<const uint8_t*>(bytes->data()), bytes->size(), pos,
      bytes);
  ASSERT_TRUE(view.has_value());
  LabelArena copy = *view;  // copies share the keep-alive
  view.reset();
  bytes.reset();  // the arena's own reference must keep the buffer alive
  for (Vertex v = 0; v < copy.num_vertices(); ++v) {
    EXPECT_EQ(copy.DecodeRun(v), sets[v]);
  }
}

TEST_P(LabelArenaViewTest, SliceKeepsOnlySelectedRuns) {
  std::vector<LabelSet> sets = RandomLabelSets(30, 67);
  LabelArena arena = LabelArena::FromLabelSets(sets, GetParam());
  uint64_t full_bytes = arena.SizeBytes();
  LabelArena sliced = arena;
  auto keep = [](Vertex v) { return v % 3 == 0; };
  sliced.Slice(keep);
  EXPECT_EQ(sliced.num_vertices(), arena.num_vertices());
  uint64_t kept_entries = 0;
  for (Vertex v = 0; v < arena.num_vertices(); ++v) {
    if (keep(v)) {
      EXPECT_EQ(sliced.DecodeRun(v), sets[v]) << "vertex " << v;
      kept_entries += sets[v].size();
      EXPECT_EQ(LabelArena::Join(sliced, v, arena, v),
                LabelArena::Join(arena, v, arena, v));
    } else {
      EXPECT_EQ(sliced.RunSize(v), 0u) << "vertex " << v;
    }
  }
  EXPECT_EQ(sliced.total_entries(), kept_entries);
  EXPECT_LT(sliced.SizeBytes(), full_bytes);
}

TEST_P(LabelArenaViewTest, SlicingAViewMaterializesTheKeptRuns) {
  std::vector<LabelSet> sets = RandomLabelSets(20, 71);
  LabelArena arena = LabelArena::FromLabelSets(sets, GetParam());
  auto bytes = std::make_shared<std::string>();
  arena.AppendTo(*bytes);
  size_t pos = 0;
  auto view = LabelArena::ParseView(
      reinterpret_cast<const uint8_t*>(bytes->data()), bytes->size(), pos,
      bytes);
  ASSERT_TRUE(view.has_value());
  view->Slice([](Vertex v) { return v < 10; });
  EXPECT_FALSE(view->is_view());
  bytes.reset();  // sliced arenas own their payload; the mapping can go
  for (Vertex v = 0; v < 10; ++v) {
    EXPECT_EQ(view->DecodeRun(v), sets[v]);
  }
  for (Vertex v = 10; v < 20; ++v) {
    EXPECT_EQ(view->RunSize(v), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Encodings, LabelArenaViewTest,
                         ::testing::Values(ArenaEncoding::kPacked,
                                           ArenaEncoding::kVarint),
                         [](const auto& info) {
                           return info.param == ArenaEncoding::kPacked
                                      ? "Packed"
                                      : "Varint";
                         });

TEST(LabelArenaCursorTest, VarintCursorEdgeCases) {
  // Empty run, single-entry run, and maximum-delta ranks (rank 0 then the
  // 23-bit maximum — the widest delta the varint stream can encode).
  std::vector<LabelSet> sets(4);
  sets[1].Append(LabelEntry(7, 3, 2));
  sets[2].Append(LabelEntry(0, 1, 1));
  sets[2].Append(LabelEntry(static_cast<Vertex>(LabelEntry::kMaxHub), 5, 9));
  sets[3].Append(LabelEntry(static_cast<Vertex>(LabelEntry::kMaxHub), 2, 1));
  LabelArena arena = LabelArena::FromLabelSets(sets, ArenaEncoding::kVarint);
  EXPECT_EQ(arena.RunSize(0), 0u);
  LabelArena::Cursor empty = arena.RunCursor(0);
  EXPECT_FALSE(empty.Next());
  for (Vertex v = 0; v < 4; ++v) {
    EXPECT_EQ(arena.DecodeRun(v), sets[v]) << "vertex " << v;
  }
  EXPECT_EQ(arena.FindHub(2, static_cast<Rank>(LabelEntry::kMaxHub))->first,
            5u);
  EXPECT_EQ(arena.FindHub(3, 0), std::nullopt);
  // The wide-delta runs survive a serialization round trip (both the owned
  // and the view parse re-validate the stream).
  std::string bytes;
  arena.AppendTo(bytes);
  size_t pos = 0;
  auto parsed = LabelArena::Parse(bytes, pos);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, arena);
}

TEST(LabelArenaTest, ParseRejectsOversizedVertexCountWithoutAllocating) {
  // A crafted header claiming 2^32-1 vertices in a 5-byte payload must be
  // rejected as malformed, not sized into a giant offsets table.
  std::string evil = {'\x00', '\xff', '\xff', '\xff', '\xff'};
  size_t pos = 0;
  EXPECT_FALSE(LabelArena::Parse(evil, pos).has_value());
  // Same with a run length that overflows the offset arithmetic.
  std::string big_run = {'\x00', '\x01', '\x00', '\x00', '\x00',
                         '\xff', '\xff', '\xff', '\xff', '\xff',
                         '\xff', '\xff', '\xff', '\xff', '\x01'};
  pos = 0;
  EXPECT_FALSE(LabelArena::Parse(big_run, pos).has_value());
}

TEST(LabelArenaTest, PackedAndVarintAgreeOnEveryJoin) {
  std::vector<LabelSet> outs = RandomLabelSets(20, 31);
  std::vector<LabelSet> ins = RandomLabelSets(20, 37);
  LabelArena packed_out =
      LabelArena::FromLabelSets(outs, ArenaEncoding::kPacked);
  LabelArena packed_in = LabelArena::FromLabelSets(ins, ArenaEncoding::kPacked);
  LabelArena varint_out =
      LabelArena::FromLabelSets(outs, ArenaEncoding::kVarint);
  LabelArena varint_in = LabelArena::FromLabelSets(ins, ArenaEncoding::kVarint);
  for (Vertex s = 0; s < 20; ++s) {
    for (Vertex t = 0; t < 20; ++t) {
      JoinResult expected = LabelArena::Join(packed_out, s, packed_in, t);
      EXPECT_EQ(LabelArena::Join(varint_out, s, varint_in, t), expected);
      // Mixed encodings route through the cursor merge.
      EXPECT_EQ(LabelArena::Join(packed_out, s, varint_in, t), expected);
      EXPECT_EQ(LabelArena::Join(varint_out, s, packed_in, t), expected);
    }
  }
}

TEST(LabelArenaTest, VarintIsSmallerOnRealisticLabels) {
  std::vector<LabelSet> sets = RandomLabelSets(200, 41);
  LabelArena packed = LabelArena::FromLabelSets(sets, ArenaEncoding::kPacked);
  LabelArena varint = LabelArena::FromLabelSets(sets, ArenaEncoding::kVarint);
  ASSERT_GT(packed.total_entries(), 0u);
  EXPECT_EQ(packed.BytesPerEntry(), 8.0);
  EXPECT_LT(varint.SizeBytes(), packed.SizeBytes());
  EXPECT_EQ(varint.total_entries(), packed.total_entries());
}

TEST(LabelArenaTest, EmptyArena) {
  LabelArena arena;
  EXPECT_EQ(arena.num_vertices(), 0u);
  EXPECT_EQ(arena.total_entries(), 0u);
  EXPECT_EQ(arena.SizeBytes(), 0u);
  LabelArena built = LabelArena::FromLabelSets({}, ArenaEncoding::kPacked);
  EXPECT_EQ(built.num_vertices(), 0u);
  std::string bytes;
  built.AppendTo(bytes);
  size_t pos = 0;
  auto parsed = LabelArena::Parse(bytes, pos);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->num_vertices(), 0u);
}

}  // namespace
}  // namespace csc
