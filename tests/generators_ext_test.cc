#include <gtest/gtest.h>

#include "baseline/bfs_cycle.h"
#include "csc/csc_index.h"
#include "graph/generators.h"
#include "graph/ordering.h"
#include "graph/scc.h"

namespace csc {
namespace {

TEST(SbmTest, DeterministicAndSeedSensitive) {
  SbmConfig config;
  config.num_vertices = 100;
  EXPECT_EQ(GenerateStochasticBlockModel(config, 1),
            GenerateStochasticBlockModel(config, 1));
  EXPECT_NE(GenerateStochasticBlockModel(config, 1),
            GenerateStochasticBlockModel(config, 2));
}

TEST(SbmTest, IntraBlockDensityExceedsInterBlock) {
  SbmConfig config;
  config.num_vertices = 200;
  config.num_blocks = 4;
  config.intra_p = 0.2;
  config.inter_p = 0.01;
  DiGraph graph = GenerateStochasticBlockModel(config, 7);
  uint64_t intra = 0, inter = 0;
  for (Vertex v = 0; v < graph.num_vertices(); ++v) {
    for (Vertex w : graph.OutNeighbors(v)) {
      if (v % config.num_blocks == w % config.num_blocks) {
        ++intra;
      } else {
        ++inter;
      }
    }
  }
  // 50 vertices per block: ~0.2 * 50 * 49 * 4 intra vs ~0.01 * 200*150 inter.
  EXPECT_GT(intra, inter);
}

TEST(SbmTest, NoSelfLoops) {
  SbmConfig config;
  config.num_vertices = 80;
  config.intra_p = 0.5;  // dense enough that a self-loop bug would show
  DiGraph graph = GenerateStochasticBlockModel(config, 3);
  for (Vertex v = 0; v < graph.num_vertices(); ++v) {
    EXPECT_FALSE(graph.HasEdge(v, v));
  }
}

TEST(SbmTest, ZeroBlocksCoercedToOne) {
  SbmConfig config;
  config.num_vertices = 20;
  config.num_blocks = 0;
  config.intra_p = 0.3;
  DiGraph graph = GenerateStochasticBlockModel(config, 5);
  EXPECT_EQ(graph.num_vertices(), 20u);
  EXPECT_GT(graph.num_edges(), 0u);
}

TEST(CompleteDigraphTest, HasAllOrderedPairs) {
  DiGraph complete = GenerateCompleteDigraph(7);
  EXPECT_EQ(complete.num_vertices(), 7u);
  EXPECT_EQ(complete.num_edges(), 42u);
  for (Vertex u = 0; u < 7; ++u) {
    for (Vertex v = 0; v < 7; ++v) {
      EXPECT_EQ(complete.HasEdge(u, v), u != v);
    }
  }
}

TEST(CompleteDigraphTest, EveryVertexHasNMinusTwoTwoCycles) {
  // In K_n (directed), every vertex v has a 2-cycle with each other vertex.
  DiGraph complete = GenerateCompleteDigraph(6);
  for (Vertex v = 0; v < 6; ++v) {
    CycleCount c = BfsCountCycles(complete, v);
    EXPECT_EQ(c.length, 2u);
    EXPECT_EQ(c.count, 5u);
  }
}

TEST(CompleteDigraphTest, IndexAgreesOnDensestCase) {
  DiGraph complete = GenerateCompleteDigraph(10);
  CscIndex index = CscIndex::Build(complete, DegreeOrdering(complete));
  for (Vertex v = 0; v < 10; ++v) {
    EXPECT_EQ(index.Query(v), (CycleCount{2, 9}));
  }
}

TEST(RingOfCliquesTest, StructureIsExact) {
  DiGraph ring = GenerateRingOfCliques(4, 3);
  EXPECT_EQ(ring.num_vertices(), 12u);
  // 4 cliques x 6 intra edges + 4 bridges.
  EXPECT_EQ(ring.num_edges(), 4u * 6 + 4);
}

TEST(RingOfCliquesTest, EveryVertexHasKnownAnswer) {
  // Within a clique of size s, every vertex has s-1 two-cycles.
  const unsigned s = 4;
  DiGraph ring = GenerateRingOfCliques(3, s);
  CscIndex index = CscIndex::Build(ring, DegreeOrdering(ring));
  for (Vertex v = 0; v < ring.num_vertices(); ++v) {
    EXPECT_EQ(index.Query(v), (CycleCount{2, s - 1})) << "vertex " << v;
  }
}

TEST(RingOfCliquesTest, SingleCliqueHasNoBridge) {
  DiGraph clique = GenerateRingOfCliques(1, 5);
  EXPECT_EQ(clique.num_edges(), 20u);
  EXPECT_EQ(clique, GenerateCompleteDigraph(5));
}

TEST(RingOfCliquesTest, CliqueSizeOneIsARingCycle) {
  // Degenerate cliques: the graph is a directed n-cycle; every vertex lies
  // on exactly one shortest cycle of length n.
  DiGraph ring = GenerateRingOfCliques(6, 1);
  EXPECT_EQ(ring.num_edges(), 6u);
  SccResult scc = ComputeScc(ring);
  EXPECT_EQ(scc.num_components(), 1u);
  for (Vertex v = 0; v < 6; ++v) {
    EXPECT_EQ(BfsCountCycles(ring, v), (CycleCount{6, 1}));
  }
}

TEST(RingOfCliquesTest, WholeRingIsOneScc) {
  DiGraph ring = GenerateRingOfCliques(5, 3);
  SccResult scc = ComputeScc(ring);
  EXPECT_EQ(scc.num_components(), 1u);
}

}  // namespace
}  // namespace csc
