#include "csc/csc_index.h"

#include <gtest/gtest.h>

#include "baseline/bfs_cycle.h"
#include "tests/test_util.h"

namespace csc {
namespace {

class CscFigure2Test : public ::testing::Test {
 protected:
  CscFigure2Test()
      : graph_(Figure2Graph()),
        index_(CscIndex::Build(graph_, Figure2Ordering())) {}

  DiGraph graph_;
  CscIndex index_;
};

TEST_F(CscFigure2Test, ReproducesTableIII) {
  // Bipartite ranks: v1_i = 0, v7_i = 2, v7_o = 3 (v1 has original rank 0,
  // v7 original rank 1).
  const LabelSet& in_v7i = index_.labeling().in[InVertex(6)];
  ASSERT_EQ(in_v7i.size(), 2u);
  EXPECT_EQ(in_v7i.entries()[0], LabelEntry(0, 4, 2));  // (v1_i, 4, 2)
  EXPECT_EQ(in_v7i.entries()[1], LabelEntry(2, 0, 1));  // (v7_i, 0, 1)

  const LabelSet& out_v7o = index_.labeling().out[OutVertex(6)];
  ASSERT_EQ(out_v7o.size(), 3u);
  EXPECT_EQ(out_v7o.entries()[0], LabelEntry(0, 7, 1));   // (v1_i, 7, 1)
  EXPECT_EQ(out_v7o.entries()[1], LabelEntry(2, 11, 1));  // (v7_i, 11, 1)
  EXPECT_EQ(out_v7o.entries()[2], LabelEntry(3, 0, 1));   // (v7_o, 0, 1)
}

TEST_F(CscFigure2Test, PaperExample6Query) {
  // SCCnt(v7) = 2 + 1 = 3 at bipartite distance 11 => cycle length 6.
  CycleCount cc = index_.Query(6);
  EXPECT_EQ(cc.length, 6u);
  EXPECT_EQ(cc.count, 3u);
}

TEST_F(CscFigure2Test, MatchesBfsForAllVertices) {
  for (Vertex v = 0; v < graph_.num_vertices(); ++v) {
    EXPECT_EQ(index_.Query(v), BfsCountCycles(graph_, v)) << "vertex " << v;
  }
}

TEST_F(CscFigure2Test, BipartiteStructureSizes) {
  EXPECT_EQ(index_.num_original_vertices(), 10u);
  EXPECT_EQ(index_.bipartite_graph().num_vertices(), 20u);
  EXPECT_EQ(index_.bipartite_graph().num_edges(),
            graph_.num_vertices() + graph_.num_edges());
}

TEST_F(CscFigure2Test, BuildStatsAreConsistent) {
  const LabelBuildStats& stats = index_.build_stats();
  EXPECT_EQ(stats.entries, index_.TotalEntries());
  EXPECT_EQ(stats.canonical_entries + stats.non_canonical_entries,
            stats.entries);
  EXPECT_EQ(index_.SizeBytes(), index_.TotalEntries() * 8);
}

TEST_F(CscFigure2Test, CoupleLabelShiftInvariant) {
  // §IV.E: L_in(v_o) = shift(L_in(v_i)) plus v_o's self entry.
  const auto& order = index_.bipartite_order();
  for (Vertex v = 0; v < 10; ++v) {
    const auto& in_vi = index_.labeling().in[InVertex(v)].entries();
    const auto& in_vo = index_.labeling().in[OutVertex(v)].entries();
    ASSERT_EQ(in_vo.size(), in_vi.size() + 1);
    for (size_t i = 0; i < in_vi.size(); ++i) {
      EXPECT_EQ(in_vo[i].hub(), in_vi[i].hub());
      EXPECT_EQ(in_vo[i].dist(), in_vi[i].dist() + 1);
      EXPECT_EQ(in_vo[i].count(), in_vi[i].count());
    }
    EXPECT_EQ(in_vo.back(),
              LabelEntry(order.vertex_to_rank[OutVertex(v)], 0, 1));
  }
}

TEST(CscIndexTest, NoCycleGraph) {
  DiGraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(1, 3);
  CscIndex index = CscIndex::Build(g, DegreeOrdering(g));
  for (Vertex v = 0; v < 4; ++v) {
    EXPECT_EQ(index.Query(v), (CycleCount{kInfDist, 0}));
  }
}

TEST(CscIndexTest, TwoCycles) {
  DiGraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  g.AddEdge(1, 2);
  g.AddEdge(2, 1);
  CscIndex index = CscIndex::Build(g, DegreeOrdering(g));
  EXPECT_EQ(index.Query(0), (CycleCount{2, 1}));
  EXPECT_EQ(index.Query(1), (CycleCount{2, 2}));
  EXPECT_EQ(index.Query(2), (CycleCount{2, 1}));
}

TEST(CscIndexTest, SingleVertexAndEmptyGraph) {
  DiGraph empty;
  CscIndex e = CscIndex::Build(empty, DegreeOrdering(empty));
  EXPECT_EQ(e.num_original_vertices(), 0u);
  DiGraph one(1);
  CscIndex i = CscIndex::Build(one, DegreeOrdering(one));
  EXPECT_EQ(i.Query(0), (CycleCount{kInfDist, 0}));
}

TEST(CscIndexTest, InvertedIndexOptionPopulatesBothSides) {
  DiGraph g = Figure2Graph();
  CscIndex::Options options;
  options.maintain_inverted_index = true;
  CscIndex index = CscIndex::Build(g, Figure2Ordering(), options);
  ASSERT_TRUE(index.has_inverted_index());
  uint64_t in_entries = 0, out_entries = 0;
  for (Vertex v = 0; v < index.bipartite_graph().num_vertices(); ++v) {
    in_entries += index.labeling().in[v].size();
    out_entries += index.labeling().out[v].size();
  }
  EXPECT_EQ(index.inv_in().TotalEntries(), in_entries);
  EXPECT_EQ(index.inv_out().TotalEntries(), out_entries);
}

TEST(CscIndexTest, EnsureInvertedIndexesIsIdempotent) {
  DiGraph g = Figure2Graph();
  CscIndex index = CscIndex::Build(g, Figure2Ordering());
  EXPECT_FALSE(index.has_inverted_index());
  index.EnsureInvertedIndexes();
  ASSERT_TRUE(index.has_inverted_index());
  uint64_t before = index.inv_in().TotalEntries();
  index.EnsureInvertedIndexes();
  EXPECT_EQ(index.inv_in().TotalEntries(), before);
}

TEST(CscAblationTest, DisablingCoupleSkippingKeepsAnswers) {
  DiGraph g = RandomGraph(40, 2.5, 77);
  VertexOrdering order = DegreeOrdering(g);
  CscIndex standard = CscIndex::Build(g, order);
  CscAblationConfig config;
  config.disable_couple_skipping = true;
  CscIndex ablated = BuildCscAblation(g, order, config);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(ablated.Query(v), standard.Query(v)) << "vertex " << v;
  }
  // Without couple skipping every bipartite vertex runs its own BFS pass.
  EXPECT_GT(ablated.build_stats().vertices_dequeued,
            standard.build_stats().vertices_dequeued);
}

TEST(CscAblationTest, DisablingDistancePruningKeepsAnswersButGrowsIndex) {
  DiGraph g = RandomGraph(40, 2.5, 78);
  VertexOrdering order = DegreeOrdering(g);
  CscIndex standard = CscIndex::Build(g, order);
  CscAblationConfig config;
  config.disable_distance_pruning = true;
  CscIndex ablated = BuildCscAblation(g, order, config);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(ablated.Query(v), standard.Query(v)) << "vertex " << v;
  }
  EXPECT_GE(ablated.TotalEntries(), standard.TotalEntries());
}

}  // namespace
}  // namespace csc
