// NEGATIVE-COMPILE FIXTURE — must NOT compile under Clang with
// -Werror=thread-safety-analysis. CTest (tests/CMakeLists.txt) invokes the
// compiler on this file with WILL_FAIL: if the diagnostics below ever stop
// firing, the thread-safety gate has silently rotted and the test suite
// says so. Under GCC the annotations are no-ops, so this file compiles
// cleanly there — which is exactly the portability contract
// (thread_safety_noop test leg).
//
// Every violation class the serving stack relies on the analysis to catch:
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace csc {

class Misguarded {
 public:
  // (1) Unlocked write to a guarded member.
  void UnlockedWrite() { counter_ = 1; }

  // (2) Unlocked read of a guarded member.
  int UnlockedRead() { return counter_; }

  // (3) Calling a *Locked helper without holding the required capability.
  void CallsHelperWithoutLock() { BumpLocked(); }

  // (4) Acquiring a lock the caller claims to exclude... and then
  // re-entering through a CSC_EXCLUDES path while still holding it.
  void DoubleAcquire() {
    MutexLock lock(mu_);
    Excluded();
  }

  void Excluded() CSC_EXCLUDES(mu_) { MutexLock lock(mu_); }

 private:
  void BumpLocked() CSC_REQUIRES(mu_) { ++counter_; }

  Mutex mu_;
  int counter_ CSC_GUARDED_BY(mu_) = 0;
};

// (5) Guarded-member access from a lambda that doesn't hold the lock —
// the failure mode behind the "no predicate-lambda cv waits" convention.
class LambdaLeak {
 public:
  bool Peek() {
    auto reader = [this] { return flag_; };
    return reader();
  }

 private:
  Mutex mu_;
  bool flag_ CSC_GUARDED_BY(mu_) = false;
};

}  // namespace csc
