// Control fixture for the negative-compile test: the corrected version of
// every violation in thread_safety_misguarded.cc. Compiles warning-free on
// Clang with -Werror=thread-safety-analysis (and everywhere else) —
// proving the WILL_FAIL result next door comes from the violations, not
// from a broken compile command.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace csc {

class Guarded {
 public:
  void LockedWrite() {
    MutexLock lock(mu_);
    counter_ = 1;
  }

  int LockedRead() {
    MutexLock lock(mu_);
    return counter_;
  }

  void CallsHelperWithLock() {
    MutexLock lock(mu_);
    BumpLocked();
  }

  void Excluded() CSC_EXCLUDES(mu_) { MutexLock lock(mu_); }

 private:
  void BumpLocked() CSC_REQUIRES(mu_) { ++counter_; }

  Mutex mu_;
  int counter_ CSC_GUARDED_BY(mu_) = 0;
};

class NoLambdaLeak {
 public:
  bool Peek() {
    MutexLock lock(mu_);
    return flag_;
  }

 private:
  Mutex mu_;
  bool flag_ CSC_GUARDED_BY(mu_) = false;
};

}  // namespace csc
