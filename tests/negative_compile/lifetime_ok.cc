// Control for lifetime_dangling.cc: the same operations against owners that
// are still alive. Must compile cleanly under Clang with -Werror=dangling
// -Werror=dangling-gsl -Werror=return-stack-address — proving the
// annotations flag the dangling fixture for its bugs, not for using the API.

#include <cstdint>

#include "core/label_arena.h"

namespace {

// OK: the view's owner is the caller's arena, which outlives the call.
const uint8_t* PayloadOf(const csc::LabelArena& arena) {
  return arena.payload_data();
}

// OK: cursor and arena share a scope; the view never outlives the owner.
int CountRuns(const csc::LabelArena& arena) {
  int n = 0;
  for (csc::LabelArena::Cursor c = arena.RunCursor(0); c.Next();) ++n;
  return n;
}

}  // namespace

int main() {
  csc::LabelArena arena;
  return (PayloadOf(arena) != nullptr) + CountRuns(arena);
}
