// Negative-compile fixture for the lifetime contracts
// (util/lifetime_annotations.h): every statement below creates a view that
// outlives its owner. Under Clang with -Werror=dangling -Werror=dangling-gsl
// -Werror=return-stack-address this file MUST fail to compile (the
// lifetime_negative_compile CTest is WILL_FAIL), proving the annotations on
// the real headers actually fire. The lifetime_ok.cc control does the same
// operations against live owners and must pass. Under the no-op annotation
// path (lifetime_noop_compile, any compiler, no -Werror) this file must
// compile cleanly — the bugs below are exactly the ones the compiler cannot
// see without the annotations.

#include <cstdint>

#include "core/label_arena.h"

namespace {

csc::LabelArena MakeArena() { return csc::LabelArena(); }

// BAD: payload_data() is CSC_LIFETIME_BOUND to the arena, which dies at end
// of scope — the returned pointer dangles.
const uint8_t* DanglingReturn() {
  csc::LabelArena arena;
  return arena.payload_data();
}

// BAD: the view is bound to a temporary arena destroyed at the end of the
// full-expression.
const uint8_t* DanglingFromTemporary() {
  const uint8_t* payload = MakeArena().payload_data();
  return payload;
}

// BAD: Cursor is CSC_VIEW_TYPE and RunCursor is CSC_LIFETIME_BOUND — the
// cursor's byte pointers walk a payload that no longer exists.
int DanglingCursor() {
  csc::LabelArena::Cursor c = MakeArena().RunCursor(0);
  int n = 0;
  while (c.Next()) ++n;
  return n;
}

}  // namespace

int main() {
  return (DanglingReturn() != nullptr) + (DanglingFromTemporary() != nullptr) +
         DanglingCursor();
}
