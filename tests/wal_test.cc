#include "serving/wal.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "graph/digraph.h"
#include "util/checksum.h"
#include "util/env.h"
#include "util/failpoint.h"
#include "tests/test_util.h"

namespace csc {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::vector<EdgeUpdate> SomeBatch() {
  return {EdgeUpdate::Insert(1, 2), EdgeUpdate::Remove(3, 4),
          EdgeUpdate::Insert(5, 6)};
}

class WalTest : public testing::Test {
 protected:
  void TearDown() override {
    Failpoints::Instance().ClearAll();
    std::remove(path_.c_str());
    std::remove((path_ + ".next").c_str());
  }
  std::string path_ = TempPath("wal_test.wal");
};

TEST_F(WalTest, CreateFreshThenReadAllYieldsCheckpoint) {
  DiGraph graph = Figure2Graph();
  auto wal = Wal::CreateFresh(path_, graph);
  ASSERT_NE(wal, nullptr);
  std::vector<WalRecord> records;
  ASSERT_TRUE(Wal::ReadAll(path_, &records));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].type, WalRecordType::kCheckpoint);
  EXPECT_EQ(records[0].num_vertices, graph.num_vertices());
  EXPECT_EQ(records[0].edges.size(), graph.num_edges());
  // The checkpoint graph reconstructs the original exactly.
  DiGraph back = DiGraph::FromEdges(records[0].num_vertices, records[0].edges);
  EXPECT_EQ(back.num_edges(), graph.num_edges());
}

TEST_F(WalTest, BatchAndRollbackRoundTrip) {
  auto wal = Wal::CreateFresh(path_, Figure2Graph());
  ASSERT_NE(wal, nullptr);
  std::string error;
  ASSERT_TRUE(wal->AppendBatch(1, SomeBatch(), &error)) << error;
  ASSERT_TRUE(wal->AppendBatch(2, {EdgeUpdate::Insert(7, 8)}, &error));
  ASSERT_TRUE(wal->AppendRollback(2, 2, &error)) << error;
  std::vector<WalRecord> records;
  ASSERT_TRUE(Wal::ReadAll(path_, &records, &error)) << error;
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[1].type, WalRecordType::kBatch);
  EXPECT_EQ(records[1].epoch, 1u);
  ASSERT_EQ(records[1].updates.size(), 3u);
  EXPECT_EQ(records[1].updates[0].edge.from, 1u);
  EXPECT_EQ(records[1].updates[1].kind, UpdateKind::kRemove);
  EXPECT_EQ(records[3].type, WalRecordType::kRollback);
  EXPECT_EQ(records[3].epoch, 2u);
  EXPECT_EQ(records[3].epoch_last, 2u);
}

TEST_F(WalTest, CreateFreshTruncatesPriorLog) {
  auto wal = Wal::CreateFresh(path_, Figure2Graph());
  ASSERT_NE(wal, nullptr);
  ASSERT_TRUE(wal->AppendBatch(1, SomeBatch(), nullptr));
  wal.reset();
  auto fresh = Wal::CreateFresh(path_, Figure2Graph());
  ASSERT_NE(fresh, nullptr);
  std::vector<WalRecord> records;
  ASSERT_TRUE(Wal::ReadAll(path_, &records));
  ASSERT_EQ(records.size(), 1u);  // the old batch is gone
  EXPECT_EQ(records[0].type, WalRecordType::kCheckpoint);
}

TEST_F(WalTest, MissingFileReadsEmpty) {
  std::vector<WalRecord> records;
  std::string error;
  EXPECT_TRUE(Wal::ReadAll(TempPath("wal_never_written.wal"), &records,
                           &error));
  EXPECT_TRUE(records.empty());
}

TEST_F(WalTest, BadMagicFails) {
  ASSERT_TRUE(WriteStringToFile(path_, "NOTAWAL0 trailing bytes"));
  std::vector<WalRecord> records;
  std::string error;
  EXPECT_FALSE(Wal::ReadAll(path_, &records, &error));
  EXPECT_FALSE(error.empty());
}

TEST_F(WalTest, TornTailIsTolerated) {
  auto wal = Wal::CreateFresh(path_, Figure2Graph());
  ASSERT_NE(wal, nullptr);
  ASSERT_TRUE(wal->AppendBatch(1, SomeBatch(), nullptr));
  ASSERT_TRUE(wal->AppendBatch(2, SomeBatch(), nullptr));
  wal.reset();
  // Chop bytes off the tail: the torn final record must be dropped and
  // everything before it must survive — exactly the crash-mid-append shape.
  std::string bytes = ReadFileToString(path_).value();
  for (size_t cut = 1; cut <= 9; cut += 4) {
    ASSERT_TRUE(WriteStringToFile(path_, bytes.substr(0, bytes.size() - cut)));
    std::vector<WalRecord> records;
    std::string error;
    ASSERT_TRUE(Wal::ReadAll(path_, &records, &error)) << error;
    ASSERT_EQ(records.size(), 2u) << "cut=" << cut;
    EXPECT_EQ(records[1].epoch, 1u);
  }
}

TEST_F(WalTest, CorruptTailRecordIsDropped) {
  auto wal = Wal::CreateFresh(path_, Figure2Graph());
  ASSERT_NE(wal, nullptr);
  ASSERT_TRUE(wal->AppendBatch(1, SomeBatch(), nullptr));
  wal.reset();
  // Flip a byte inside the final record's body: its CRC fails, reading
  // stops there, and the checkpoint before it still parses.
  std::string bytes = ReadFileToString(path_).value();
  bytes[bytes.size() - 2] ^= 0x40;
  ASSERT_TRUE(WriteStringToFile(path_, bytes));
  std::vector<WalRecord> records;
  ASSERT_TRUE(Wal::ReadAll(path_, &records));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].type, WalRecordType::kCheckpoint);
}

TEST_F(WalTest, ShortWriteFailpointFailsAppend) {
  auto wal = Wal::CreateFresh(path_, Figure2Graph());
  ASSERT_NE(wal, nullptr);
  FailpointAction action;
  action.mode = FailpointMode::kShortWrite;
  action.keep_bytes = 4;
  Failpoints::Instance().Set("wal.append", action);
  std::string error;
  EXPECT_FALSE(wal->AppendBatch(1, SomeBatch(), &error));
  EXPECT_FALSE(error.empty());
  // The torn append is invisible to recovery: the tail fails its CRC.
  std::vector<WalRecord> records;
  ASSERT_TRUE(Wal::ReadAll(path_, &records));
  ASSERT_EQ(records.size(), 1u);
}

TEST_F(WalTest, FsyncFailpointFailsAppend) {
  auto wal = Wal::CreateFresh(path_, Figure2Graph());
  ASSERT_NE(wal, nullptr);
  FailpointAction action;
  action.mode = FailpointMode::kError;
  Failpoints::Instance().Set("wal.fsync", action);
  EXPECT_FALSE(wal->AppendBatch(1, SomeBatch(), nullptr));
}

TEST_F(WalTest, CheckpointAndOpenFailpointsFailCreateFresh) {
  for (const char* site : {"wal.checkpoint", "wal.open"}) {
    FailpointAction action;
    action.mode = FailpointMode::kError;
    Failpoints::Instance().Set(site, action);
    std::string error;
    EXPECT_EQ(Wal::CreateFresh(path_, Figure2Graph(), &error), nullptr)
        << site;
    EXPECT_FALSE(error.empty()) << site;
    Failpoints::Instance().ClearAll();
  }
}

TEST_F(WalTest, FailedCreateFreshLeavesPriorLogIntact) {
  // Regression: CreateFresh used to rename the new generation into place
  // and only then open it — a failed open left the on-disk log
  // checkpoint-only while the engine kept appending acknowledged batches
  // into the renamed-over orphan inode. With the rename last, any failure
  // leaves the previous generation exactly as it was.
  auto wal = Wal::CreateFresh(path_, Figure2Graph());
  ASSERT_NE(wal, nullptr);
  ASSERT_TRUE(wal->AppendBatch(1, SomeBatch(), nullptr));
  std::string before = ReadFileToString(path_).value();
  for (const char* site : {"wal.open", "wal.fsync", "wal.finalize"}) {
    FailpointAction action;
    action.mode = FailpointMode::kError;
    Failpoints::Instance().Set(site, action);
    std::string error;
    EXPECT_EQ(Wal::CreateFresh(path_, Figure2Graph(), &error), nullptr)
        << site;
    EXPECT_EQ(ReadFileToString(path_).value(), before) << site;
    Failpoints::Instance().ClearAll();
    // The surviving handle still appends to the on-disk log, not an orphan.
    ASSERT_TRUE(wal->AppendBatch(2, SomeBatch(), &error)) << site << error;
    std::vector<WalRecord> records;
    ASSERT_TRUE(Wal::ReadAll(path_, &records));
    EXPECT_EQ(records.back().epoch, 2u) << site;
    before = ReadFileToString(path_).value();
  }
}

TEST_F(WalTest, StagedGenerationPublishesOnlyOnFinalize) {
  auto wal = Wal::CreateFresh(path_, Figure2Graph());
  ASSERT_NE(wal, nullptr);
  ASSERT_TRUE(wal->AppendBatch(1, SomeBatch(), nullptr));
  std::string old_generation = ReadFileToString(path_).value();
  wal.reset();
  // Stage a new generation and append into it: the published log must not
  // move until Finalize — this is what keeps the crash-time log alive
  // through a recovery replay.
  std::string error;
  auto staged = Wal::CreateStaged(path_, Figure2Graph(), &error);
  ASSERT_NE(staged, nullptr) << error;
  EXPECT_TRUE(staged->staged());
  ASSERT_TRUE(staged->AppendBatch(1, {EdgeUpdate::Insert(7, 6)}, &error));
  EXPECT_EQ(ReadFileToString(path_).value(), old_generation);
  ASSERT_TRUE(staged->Finalize(&error)) << error;
  EXPECT_FALSE(staged->staged());
  std::vector<WalRecord> records;
  ASSERT_TRUE(Wal::ReadAll(path_, &records));
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].type, WalRecordType::kBatch);
  ASSERT_EQ(records[1].updates.size(), 1u);
  EXPECT_EQ(records[1].updates[0].edge.from, 7u);
}

TEST_F(WalTest, AbandonedStagedGenerationKeepsOldLogAndCleansUp) {
  auto wal = Wal::CreateFresh(path_, Figure2Graph());
  ASSERT_NE(wal, nullptr);
  ASSERT_TRUE(wal->AppendBatch(1, SomeBatch(), nullptr));
  std::string old_generation = ReadFileToString(path_).value();
  wal.reset();
  {
    auto staged = Wal::CreateStaged(path_, Figure2Graph());
    ASSERT_NE(staged, nullptr);
    ASSERT_TRUE(staged->AppendBatch(1, SomeBatch(), nullptr));
    // A failed publish keeps the handle staged and the old log intact.
    FailpointAction action;
    action.mode = FailpointMode::kError;
    Failpoints::Instance().Set("wal.finalize", action);
    std::string error;
    EXPECT_FALSE(staged->Finalize(&error));
    EXPECT_TRUE(staged->staged());
    EXPECT_FALSE(error.empty());
    EXPECT_EQ(ReadFileToString(path_).value(), old_generation);
  }
  // Destruction of the never-published handle removes its side file.
  EXPECT_EQ(ReadFileToString(path_ + ".next"), std::nullopt);
  EXPECT_EQ(ReadFileToString(path_).value(), old_generation);
}

TEST_F(WalTest, FailedAppendDoesNotHideLaterRecords) {
  // Regression: a torn append used to stay in the file, and because ReadAll
  // stops at the first unreadable record, every later *successful* append
  // was unreachable at recovery — lost acknowledged batches. The failed
  // append must truncate back to the last durable size.
  auto wal = Wal::CreateFresh(path_, Figure2Graph());
  ASSERT_NE(wal, nullptr);
  FailpointAction action;
  action.mode = FailpointMode::kShortWrite;
  action.keep_bytes = 6;
  Failpoints::Instance().Set("wal.append", action);
  EXPECT_FALSE(wal->AppendBatch(1, SomeBatch(), nullptr));
  Failpoints::Instance().ClearAll();
  std::string error;
  ASSERT_TRUE(wal->AppendBatch(2, {EdgeUpdate::Insert(7, 6)}, &error)) << error;
  std::vector<WalRecord> records;
  ASSERT_TRUE(Wal::ReadAll(path_, &records, &error)) << error;
  ASSERT_EQ(records.size(), 2u);  // checkpoint + the epoch-2 batch
  EXPECT_EQ(records[1].type, WalRecordType::kBatch);
  EXPECT_EQ(records[1].epoch, 2u);
}

TEST_F(WalTest, OverflowingRecordCountsAreRejected) {
  // A corrupt-but-CRC-valid checkpoint record claiming ~2^61 edges: the
  // exact-size check `size == 13 + m * 8` wraps to true while the body
  // holds no edge at all — decode must reject on the bounded count instead
  // of reserving 2^61 entries or walking off the body.
  auto craft = [this](std::string body) {
    std::string file("CSCWAL01", 8);
    std::string frame;
    for (int i = 0; i < 4; ++i) {
      frame.push_back(static_cast<char>(body.size() >> (8 * i)));
    }
    uint32_t crc = Crc32c(body.data(), body.size());
    for (int i = 0; i < 4; ++i) {
      frame.push_back(static_cast<char>(crc >> (8 * i)));
    }
    file += frame + body;
    ASSERT_TRUE(WriteStringToFile(path_, file));
  };
  std::string checkpoint;
  checkpoint.push_back(static_cast<char>(WalRecordType::kCheckpoint));
  for (int i = 0; i < 4; ++i) checkpoint.push_back(2);  // num_vertices
  uint64_t m = uint64_t{1} << 61;                       // m * 8 wraps to 0
  for (int i = 0; i < 8; ++i) {
    checkpoint.push_back(static_cast<char>(m >> (8 * i)));
  }
  craft(checkpoint);
  std::vector<WalRecord> records;
  std::string error;
  ASSERT_TRUE(Wal::ReadAll(path_, &records, &error)) << error;
  EXPECT_TRUE(records.empty());  // rejected as torn/corrupt, no crash

  // Same shape for a batch record: count * 9 wrapping a 32-bit size_t.
  std::string batch;
  batch.push_back(static_cast<char>(WalRecordType::kBatch));
  for (int i = 0; i < 8; ++i) batch.push_back(1);  // epoch
  for (int i = 0; i < 4; ++i) batch.push_back(static_cast<char>(0xFF));
  craft(batch);
  records.clear();
  ASSERT_TRUE(Wal::ReadAll(path_, &records, &error)) << error;
  EXPECT_TRUE(records.empty());
}

}  // namespace
}  // namespace csc
