#include "serving/wal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "graph/digraph.h"
#include "util/env.h"
#include "util/failpoint.h"
#include "tests/test_util.h"

namespace csc {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::vector<EdgeUpdate> SomeBatch() {
  return {EdgeUpdate::Insert(1, 2), EdgeUpdate::Remove(3, 4),
          EdgeUpdate::Insert(5, 6)};
}

class WalTest : public testing::Test {
 protected:
  void TearDown() override {
    Failpoints::Instance().ClearAll();
    std::remove(path_.c_str());
  }
  std::string path_ = TempPath("wal_test.wal");
};

TEST_F(WalTest, CreateFreshThenReadAllYieldsCheckpoint) {
  DiGraph graph = Figure2Graph();
  auto wal = Wal::CreateFresh(path_, graph);
  ASSERT_NE(wal, nullptr);
  std::vector<WalRecord> records;
  ASSERT_TRUE(Wal::ReadAll(path_, &records));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].type, WalRecordType::kCheckpoint);
  EXPECT_EQ(records[0].num_vertices, graph.num_vertices());
  EXPECT_EQ(records[0].edges.size(), graph.num_edges());
  // The checkpoint graph reconstructs the original exactly.
  DiGraph back = DiGraph::FromEdges(records[0].num_vertices, records[0].edges);
  EXPECT_EQ(back.num_edges(), graph.num_edges());
}

TEST_F(WalTest, BatchAndRollbackRoundTrip) {
  auto wal = Wal::CreateFresh(path_, Figure2Graph());
  ASSERT_NE(wal, nullptr);
  std::string error;
  ASSERT_TRUE(wal->AppendBatch(1, SomeBatch(), &error)) << error;
  ASSERT_TRUE(wal->AppendBatch(2, {EdgeUpdate::Insert(7, 8)}, &error));
  ASSERT_TRUE(wal->AppendRollback(2, 2, &error)) << error;
  std::vector<WalRecord> records;
  ASSERT_TRUE(Wal::ReadAll(path_, &records, &error)) << error;
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[1].type, WalRecordType::kBatch);
  EXPECT_EQ(records[1].epoch, 1u);
  ASSERT_EQ(records[1].updates.size(), 3u);
  EXPECT_EQ(records[1].updates[0].edge.from, 1u);
  EXPECT_EQ(records[1].updates[1].kind, UpdateKind::kRemove);
  EXPECT_EQ(records[3].type, WalRecordType::kRollback);
  EXPECT_EQ(records[3].epoch, 2u);
  EXPECT_EQ(records[3].epoch_last, 2u);
}

TEST_F(WalTest, CreateFreshTruncatesPriorLog) {
  auto wal = Wal::CreateFresh(path_, Figure2Graph());
  ASSERT_NE(wal, nullptr);
  ASSERT_TRUE(wal->AppendBatch(1, SomeBatch(), nullptr));
  wal.reset();
  auto fresh = Wal::CreateFresh(path_, Figure2Graph());
  ASSERT_NE(fresh, nullptr);
  std::vector<WalRecord> records;
  ASSERT_TRUE(Wal::ReadAll(path_, &records));
  ASSERT_EQ(records.size(), 1u);  // the old batch is gone
  EXPECT_EQ(records[0].type, WalRecordType::kCheckpoint);
}

TEST_F(WalTest, MissingFileReadsEmpty) {
  std::vector<WalRecord> records;
  std::string error;
  EXPECT_TRUE(Wal::ReadAll(TempPath("wal_never_written.wal"), &records,
                           &error));
  EXPECT_TRUE(records.empty());
}

TEST_F(WalTest, BadMagicFails) {
  ASSERT_TRUE(WriteStringToFile(path_, "NOTAWAL0 trailing bytes"));
  std::vector<WalRecord> records;
  std::string error;
  EXPECT_FALSE(Wal::ReadAll(path_, &records, &error));
  EXPECT_FALSE(error.empty());
}

TEST_F(WalTest, TornTailIsTolerated) {
  auto wal = Wal::CreateFresh(path_, Figure2Graph());
  ASSERT_NE(wal, nullptr);
  ASSERT_TRUE(wal->AppendBatch(1, SomeBatch(), nullptr));
  ASSERT_TRUE(wal->AppendBatch(2, SomeBatch(), nullptr));
  wal.reset();
  // Chop bytes off the tail: the torn final record must be dropped and
  // everything before it must survive — exactly the crash-mid-append shape.
  std::string bytes = ReadFileToString(path_).value();
  for (size_t cut = 1; cut <= 9; cut += 4) {
    ASSERT_TRUE(WriteStringToFile(path_, bytes.substr(0, bytes.size() - cut)));
    std::vector<WalRecord> records;
    std::string error;
    ASSERT_TRUE(Wal::ReadAll(path_, &records, &error)) << error;
    ASSERT_EQ(records.size(), 2u) << "cut=" << cut;
    EXPECT_EQ(records[1].epoch, 1u);
  }
}

TEST_F(WalTest, CorruptTailRecordIsDropped) {
  auto wal = Wal::CreateFresh(path_, Figure2Graph());
  ASSERT_NE(wal, nullptr);
  ASSERT_TRUE(wal->AppendBatch(1, SomeBatch(), nullptr));
  wal.reset();
  // Flip a byte inside the final record's body: its CRC fails, reading
  // stops there, and the checkpoint before it still parses.
  std::string bytes = ReadFileToString(path_).value();
  bytes[bytes.size() - 2] ^= 0x40;
  ASSERT_TRUE(WriteStringToFile(path_, bytes));
  std::vector<WalRecord> records;
  ASSERT_TRUE(Wal::ReadAll(path_, &records));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].type, WalRecordType::kCheckpoint);
}

TEST_F(WalTest, ShortWriteFailpointFailsAppend) {
  auto wal = Wal::CreateFresh(path_, Figure2Graph());
  ASSERT_NE(wal, nullptr);
  FailpointAction action;
  action.mode = FailpointMode::kShortWrite;
  action.keep_bytes = 4;
  Failpoints::Instance().Set("wal.append", action);
  std::string error;
  EXPECT_FALSE(wal->AppendBatch(1, SomeBatch(), &error));
  EXPECT_FALSE(error.empty());
  // The torn append is invisible to recovery: the tail fails its CRC.
  std::vector<WalRecord> records;
  ASSERT_TRUE(Wal::ReadAll(path_, &records));
  ASSERT_EQ(records.size(), 1u);
}

TEST_F(WalTest, FsyncFailpointFailsAppend) {
  auto wal = Wal::CreateFresh(path_, Figure2Graph());
  ASSERT_NE(wal, nullptr);
  FailpointAction action;
  action.mode = FailpointMode::kError;
  Failpoints::Instance().Set("wal.fsync", action);
  EXPECT_FALSE(wal->AppendBatch(1, SomeBatch(), nullptr));
}

TEST_F(WalTest, CheckpointAndOpenFailpointsFailCreateFresh) {
  for (const char* site : {"wal.checkpoint", "wal.open"}) {
    FailpointAction action;
    action.mode = FailpointMode::kError;
    Failpoints::Instance().Set(site, action);
    std::string error;
    EXPECT_EQ(Wal::CreateFresh(path_, Figure2Graph(), &error), nullptr)
        << site;
    EXPECT_FALSE(error.empty()) << site;
    Failpoints::Instance().ClearAll();
  }
}

}  // namespace
}  // namespace csc
