#include "dynamic/decremental.h"

#include <gtest/gtest.h>

#include "baseline/bfs_cycle.h"
#include "dynamic/incremental.h"
#include "tests/test_util.h"
#include "workload/update_workload.h"

namespace csc {
namespace {

void ExpectMatchesBfs(const CscIndex& index, const DiGraph& graph,
                      const std::string& context) {
  BfsCycleCounter bfs(graph);
  for (Vertex v = 0; v < graph.num_vertices(); ++v) {
    ASSERT_EQ(index.Query(v), bfs.CountCycles(v))
        << context << " vertex " << v;
  }
}

TEST(DecrementalTest, RejectsMissingEdges) {
  DiGraph g = Figure2Graph();
  CscIndex index = CscIndex::Build(g, Figure2Ordering());
  EXPECT_FALSE(RemoveEdge(index, 0, 7));   // v1->v8 never existed
  EXPECT_FALSE(RemoveEdge(index, 3, 3));   // self loop
  EXPECT_FALSE(RemoveEdge(index, 0, 99));  // out of range
  ExpectMatchesBfs(index, g, "untouched");
}

TEST(DecrementalTest, RemovingChainEdgeKillsAllCyclesFigure2) {
  // Every cycle in Figure 2 crosses v7->v8 (ids 6 -> 7).
  DiGraph g = Figure2Graph();
  CscIndex index = CscIndex::Build(g, Figure2Ordering());
  ASSERT_TRUE(RemoveEdge(index, 6, 7));
  g.RemoveEdge(6, 7);
  for (Vertex v = 0; v < 10; ++v) {
    EXPECT_EQ(index.Query(v), (CycleCount{kInfDist, 0})) << "vertex " << v;
  }
  ExpectMatchesBfs(index, g, "after v7->v8 removal");
}

TEST(DecrementalTest, RemovingOneBranchLengthensNothingButDropsCounts) {
  // Removing v1->v4 (ids 0 -> 3) kills one of the three length-6 cycles
  // through v7 but leaves the other two.
  DiGraph g = Figure2Graph();
  CscIndex index = CscIndex::Build(g, Figure2Ordering());
  ASSERT_TRUE(RemoveEdge(index, 0, 3));
  g.RemoveEdge(0, 3);
  EXPECT_EQ(index.Query(6), (CycleCount{6, 2}));
  ExpectMatchesBfs(index, g, "after v1->v4 removal");
}

TEST(DecrementalTest, RemovalCanLengthenShortestCycle) {
  DiGraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);  // 2-cycle
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 0);  // 4-cycle 0->1->2->3->0
  CscIndex index = CscIndex::Build(g, DegreeOrdering(g));
  EXPECT_EQ(index.Query(0), (CycleCount{2, 1}));
  ASSERT_TRUE(RemoveEdge(index, 1, 0));
  g.RemoveEdge(1, 0);
  EXPECT_EQ(index.Query(0), (CycleCount{4, 1}));
  ExpectMatchesBfs(index, g, "lengthened");
}

TEST(DecrementalTest, MatchesFreshBuildExactlyAfterEachRemoval) {
  DiGraph g = RandomGraph(35, 2.2, 71);
  VertexOrdering order = DegreeOrdering(g);
  CscIndex index = CscIndex::Build(g, order);
  std::vector<Edge> removals = SampleExistingEdges(g, 15, 72);
  for (const Edge& e : removals) {
    UpdateStats stats;
    ASSERT_TRUE(RemoveEdge(index, e.from, e.to, &stats));
    ASSERT_TRUE(g.RemoveEdge(e.from, e.to));
    ExpectMatchesBfs(index, g, "removal");
    // The recovered index must coincide with a fresh build entry-for-entry
    // (recovery replays construction decisions for the affected hubs).
    CscIndex fresh = CscIndex::Build(g, order);
    ASSERT_EQ(index.labeling(), fresh.labeling())
        << "after removing " << e.from << "->" << e.to;
  }
}

TEST(DecrementalTest, RemoveThenReinsertRestoresAnswers) {
  // The paper's Figure 11 workload: remove edges, insert them back.
  DiGraph g = RandomGraph(40, 2.0, 81);
  VertexOrdering order = DegreeOrdering(g);
  CscIndex index = CscIndex::Build(g, order);
  std::vector<CycleCount> before(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) before[v] = index.Query(v);

  std::vector<Edge> edges = SampleExistingEdges(g, 10, 82);
  for (const Edge& e : edges) ASSERT_TRUE(RemoveEdge(index, e.from, e.to));
  for (const Edge& e : edges) {
    ASSERT_TRUE(InsertEdge(index, e.from, e.to,
                           MaintenanceStrategy::kMinimality));
  }
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(index.Query(v), before[v]) << "vertex " << v;
  }
}

TEST(DecrementalTest, StatsReportDeletionsAndRecovery) {
  DiGraph g = Figure2Graph();
  CscIndex index = CscIndex::Build(g, Figure2Ordering());
  UpdateStats stats;
  ASSERT_TRUE(RemoveEdge(index, 6, 7, &stats));
  EXPECT_GT(stats.entries_removed, 0u);
  EXPECT_GT(stats.hubs_processed, 0u);
  EXPECT_GT(stats.seconds, 0.0);
}

TEST(DecrementalTest, WorksWithInvertedIndexesEnabled) {
  DiGraph g = RandomGraph(30, 2.0, 91);
  CscIndex::Options options;
  options.maintain_inverted_index = true;
  CscIndex index = CscIndex::Build(g, DegreeOrdering(g), options);
  for (const Edge& e : SampleExistingEdges(g, 8, 92)) {
    ASSERT_TRUE(RemoveEdge(index, e.from, e.to));
    ASSERT_TRUE(g.RemoveEdge(e.from, e.to));
    ExpectMatchesBfs(index, g, "inv-enabled removal");
  }
  // Inverted indexes must still exactly mirror the labeling.
  uint64_t in_entries = 0, out_entries = 0;
  for (Vertex v = 0; v < index.bipartite_graph().num_vertices(); ++v) {
    in_entries += index.labeling().in[v].size();
    out_entries += index.labeling().out[v].size();
  }
  EXPECT_EQ(index.inv_in().TotalEntries(), in_entries);
  EXPECT_EQ(index.inv_out().TotalEntries(), out_entries);
}

}  // namespace
}  // namespace csc
