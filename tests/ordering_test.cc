#include "graph/ordering.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace csc {
namespace {

TEST(OrderingTest, DegreeOrderingReproducesPaperExample4) {
  // Example 4: v1 ≺ v7 ≺ v4 ≺ v10 ≺ v2 ≺ v3 ≺ v5 ≺ v6 ≺ v8 ≺ v9.
  VertexOrdering order = DegreeOrdering(Figure2Graph());
  std::vector<Vertex> expected = {0, 6, 3, 9, 1, 2, 4, 5, 7, 8};
  EXPECT_EQ(order.rank_to_vertex, expected);
}

TEST(OrderingTest, RankAndVertexArraysAreInverse) {
  VertexOrdering order = DegreeOrdering(RandomGraph(200, 4.0, 5));
  ASSERT_EQ(order.rank_to_vertex.size(), 200u);
  for (Rank r = 0; r < order.size(); ++r) {
    EXPECT_EQ(order.vertex_to_rank[order.rank_to_vertex[r]], r);
  }
}

TEST(OrderingTest, PrecedesMatchesRankValues) {
  VertexOrdering order = DegreeOrdering(Figure2Graph());
  EXPECT_TRUE(order.Precedes(0, 6));   // v1 ≺ v7
  EXPECT_FALSE(order.Precedes(6, 0));
  EXPECT_FALSE(order.Precedes(0, 0));  // not reflexive (strict)
}

TEST(OrderingTest, DegreesAreNonIncreasingAlongRanks) {
  DiGraph g = RandomGraph(300, 3.0, 9);
  VertexOrdering order = DegreeOrdering(g);
  for (Rank r = 1; r < order.size(); ++r) {
    EXPECT_GE(g.Degree(order.rank_to_vertex[r - 1]),
              g.Degree(order.rank_to_vertex[r]));
  }
}

TEST(OrderingTest, TiesBrokenByVertexId) {
  DiGraph g(4);  // all degrees zero
  VertexOrdering order = DegreeOrdering(g);
  std::vector<Vertex> expected = {0, 1, 2, 3};
  EXPECT_EQ(order.rank_to_vertex, expected);
}

TEST(OrderingTest, DegreeProductPrefersBidirectionalHubs) {
  // Vertex 0: in 3 / out 0 (product 4); vertex 4: in 1 / out 1 (product 4);
  // vertex 5: in 2 / out 2 (product 9) -> 5 must rank first.
  DiGraph g(9);
  g.AddEdge(1, 0);
  g.AddEdge(2, 0);
  g.AddEdge(3, 0);
  g.AddEdge(4, 5);
  g.AddEdge(6, 5);
  g.AddEdge(5, 7);
  g.AddEdge(5, 8);
  g.AddEdge(8, 4);
  VertexOrdering order = DegreeProductOrdering(g);
  EXPECT_EQ(order.rank_to_vertex[0], 5u);
  // Inverse property holds.
  for (Rank r = 0; r < order.size(); ++r) {
    EXPECT_EQ(order.vertex_to_rank[order.rank_to_vertex[r]], r);
  }
}

TEST(OrderingTest, RandomOrderingIsAPermutation) {
  VertexOrdering order = RandomOrdering(100, 42);
  std::vector<bool> seen(100, false);
  for (Vertex v : order.rank_to_vertex) {
    ASSERT_LT(v, 100u);
    ASSERT_FALSE(seen[v]);
    seen[v] = true;
  }
  EXPECT_EQ(RandomOrdering(100, 42).rank_to_vertex, order.rank_to_vertex);
  EXPECT_NE(RandomOrdering(100, 43).rank_to_vertex, order.rank_to_vertex);
}

TEST(OrderingTest, FromPermutationRoundTrips) {
  std::vector<Vertex> perm = {3, 1, 0, 2};
  VertexOrdering order = OrderingFromPermutation(perm);
  EXPECT_EQ(order.rank_to_vertex, perm);
  EXPECT_EQ(order.vertex_to_rank[3], 0u);
  EXPECT_EQ(order.vertex_to_rank[2], 3u);
}

}  // namespace
}  // namespace csc
