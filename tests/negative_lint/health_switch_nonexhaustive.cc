// Negative fixture for tools/check_contracts.py rule 4
// (exhaustive-switch) over the PR 10 health enum: a switch over HealthState
// that misses kDraining/kOverloaded and hides behind a `default:` — exactly
// the silent fallthrough that would let a new lifecycle state serve as
// "healthy". Never compiled — consumed by `check_contracts.py --selftest`.
//
// expect-violation: exhaustive-switch

namespace csc {

enum class HealthState { kStarting, kHealthy, kDegraded, kDraining,
                         kOverloaded };

// BAD: kDraining and kOverloaded are unhandled and the default swallows
// them.
// contracts:allow-view-return(returns string literals with static storage duration)
inline const char* HealthName(HealthState state) {
  switch (state) {
    case HealthState::kStarting:
      return "starting";
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kDegraded:
      return "degraded";
    default:
      return "?";
  }
}

}  // namespace csc
