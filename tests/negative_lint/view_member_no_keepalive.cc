// Negative fixture for tools/check_contracts.py rule 2
// (view-member-keepalive): a class storing a view-typed member with no
// shared_ptr keep-alive alongside it, and a detached task capturing a
// view-typed local. Never compiled — consumed by
// `check_contracts.py --selftest`.
//
// expect-violation: view-member-keepalive

#include <cstddef>
#include <cstdint>

namespace csc {

// BAD: stores a raw view into someone else's payload but keeps no owner
// handle — when the mapping (IndexFile) is destroyed or re-mapped, data_
// dangles. Compare LabelArena, which pairs view_payload_ with an external_
// shared_ptr, or tag the class CSC_VIEW_TYPE if the caller owns lifetime.
class CachedSlice {
 public:
  void Bind(const uint8_t* data, size_t size) {
    data_ = data;
    size_ = size;
  }

 private:
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

struct ThreadPool {
  template <typename F>
  void Submit(F&& task);
};

// BAD: the submitted task can outlive this scope; `view` dangles the moment
// the mapping owner goes away. Capture the shared_ptr owner instead.
inline void ScheduleScan(ThreadPool& pool, const uint8_t* base) {
  const uint8_t* view = base + 16;
  pool.Submit([view] { (void)view; });
}

}  // namespace csc
