// Negative fixture for tools/check_contracts.py rule 3
// (blocking-under-lock): durable I/O reachable while a reader-facing lock
// (swap_mu_ / query_mu_) is held — directly, and through a same-TU helper
// (the transitive half of the rule). Never compiled — consumed by
// `check_contracts.py --selftest`.
//
// expect-violation: blocking-under-lock

#include <string>

namespace csc {

struct Mutex {};
struct MutexLock {
  explicit MutexLock(Mutex& mu);
};
struct ReaderMutexLock {
  explicit ReaderMutexLock(Mutex& mu);
};
struct Wal {
  void AppendBatch(const std::string& record);
};

class BadEngine {
 public:
  // BAD: WAL fsync-backed append directly inside the swap critical
  // section — every reader swap stalls behind disk latency.
  void Swap(const std::string& record) {
    MutexLock lock(swap_mu_);
    wal_->AppendBatch(record);
  }

  // BAD (transitive): the query read-section calls a helper that blocks.
  int Query(int fd) {
    ReaderMutexLock lock(query_mu_);
    FlushSideChannel(fd);
    return 0;
  }

 private:
  void FlushSideChannel(int fd) { fsync(fd); }

  Mutex swap_mu_;
  Mutex query_mu_;
  Wal* wal_ = nullptr;
};

}  // namespace csc
