// Negative fixture for tools/check_contracts.py rule 4
// (exhaustive-switch): a switch over a serving-tier outcome enum that both
// misses enumerators and hides behind a `default:` — adding a new state
// (exactly how PR 8 grew ShardState) would fall into the default silently.
// Never compiled — consumed by `check_contracts.py --selftest`.
//
// expect-violation: exhaustive-switch

namespace csc {

enum class UpdateVerdict { kRejected, kApplied, kNoGraph };

// BAD: kNoGraph is unhandled and the default swallows it.
// contracts:allow-view-return(returns string literals with static storage duration)
inline const char* VerdictName(UpdateVerdict v) {
  switch (v) {
    case UpdateVerdict::kRejected:
      return "rejected";
    case UpdateVerdict::kApplied:
      return "applied";
    default:
      return "?";
  }
}

}  // namespace csc
