// Negative fixture for tools/check_contracts.py rule 1 (view-return):
// functions returning view types without CSC_LIFETIME_BOUND. Never compiled
// — consumed by `check_contracts.py --selftest`, whose meta-test fails if
// this fixture stops making the rule fire.
//
// expect-violation: view-return

#include <cstddef>
#include <cstdint>

namespace csc {

struct CSC_VIEW_TYPE LocalView {
  const uint8_t* p = nullptr;
  size_t n = 0;
};

class PayloadHolder {
 public:
  // BAD: returns a raw pointer into this object's storage with no
  // CSC_LIFETIME_BOUND — Clang cannot warn when a caller binds it past a
  // temporary PayloadHolder.
  const uint8_t* payload_data() const { return data_; }

  // BAD: returns a CSC_VIEW_TYPE-tagged type, again unannotated.
  LocalView window() const { return LocalView{data_, size_}; }

 private:
  const uint8_t* data_ = nullptr;  // contracts:allow-view-member(fixture: rule-1 subject, keep-alive is rule 2's concern)
  size_t size_ = 0;
};

}  // namespace csc
