// Dynamic witnesses for the lifetime contracts the static layer
// (util/lifetime_annotations.h + tools/check_contracts.py) can only assert:
// every zero-copy view handed out by the storage layer must keep its owner
// alive (or own its bytes) across mapping destruction, file re-maps, label
// slicing, patched clones, and snapshot retirement under concurrent
// queries. The CI address-sanitizer job runs this suite (ViewLifetime*)
// specifically: a keep-alive chain broken anywhere below turns into a
// use-after-munmap / use-after-free ASan report instead of a silent wrong
// answer.
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/cycle_index.h"
#include "core/label_patch.h"
#include "csc/index_io.h"
#include "serving/engine.h"
#include "serving/sharded_engine.h"
#include "tests/test_util.h"
#include "util/env.h"

namespace csc {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& tag)
      : path_(::testing::TempDir() + "csc_viewlife_" + tag + ".idx") {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<CycleCount> GroundTruth(CycleIndex& index, Vertex n) {
  std::vector<CycleCount> out;
  out.reserve(n);
  for (Vertex v = 0; v < n; ++v) out.push_back(index.CountShortestCycles(v));
  return out;
}

// The mapped index must serve out of the file pages even after the last
// explicit IndexFile handle is dropped AND the file itself is overwritten
// with a different index: the keep-alive threaded through LoadView is the
// only thing keeping the original pages alive.
TEST(ViewLifetimeTest, MappedIndexSurvivesHandleDropAndFileOverwrite) {
  TempFile file("overwrite");
  DiGraph graph = RandomGraph(60, 2.5, 101);
  std::unique_ptr<CycleIndex> built = MakeBackend("frozen");
  built->Build(graph);
  std::vector<CycleCount> expected =
      GroundTruth(*built, graph.num_vertices());
  ASSERT_TRUE(SaveBackendToFile(*built, file.path()));

  std::unique_ptr<CycleIndex> served;
  {
    std::shared_ptr<IndexFile> mapping = IndexFile::Open(file.path());
    ASSERT_NE(mapping, nullptr);
    BackendLoadResult loaded = LoadBackendFromMapping(mapping, "frozen");
    ASSERT_TRUE(loaded.ok()) << loaded.error;
    served = std::move(loaded.index);
  }
  // Replace the on-disk bytes with an index over a different graph; the
  // in-memory view must not notice (its owner is the retained mapping, not
  // the path).
  std::unique_ptr<CycleIndex> other = MakeBackend("frozen");
  other->Build(RandomGraph(30, 2.0, 202));
  ASSERT_TRUE(SaveBackendToFile(*other, file.path()));

  for (Vertex v = 0; v < graph.num_vertices(); ++v) {
    EXPECT_EQ(served->CountShortestCycles(v), expected[v]) << "v=" << v;
  }
}

// SliceLabels against a mapping-backed index materializes the surviving
// runs into owned storage: destroying the mapping handle afterwards must
// leave kept vertices answering exactly and dropped vertices answering
// empty — never touching unmapped pages.
TEST(ViewLifetimeTest, SlicedIndexSurvivesMappingDestruction) {
  TempFile file("sliced");
  DiGraph graph = RandomGraph(80, 2.5, 303);
  std::unique_ptr<CycleIndex> built = MakeBackend("frozen");
  built->Build(graph);
  std::vector<CycleCount> expected =
      GroundTruth(*built, graph.num_vertices());
  ASSERT_TRUE(SaveBackendToFile(*built, file.path()));

  std::shared_ptr<IndexFile> mapping = IndexFile::Open(file.path());
  ASSERT_NE(mapping, nullptr);
  BackendLoadResult loaded = LoadBackendFromMapping(mapping, "frozen");
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  ASSERT_TRUE(
      loaded.index->SliceLabels([](Vertex v) { return v % 2 == 0; }));
  mapping.reset();

  for (Vertex v = 0; v < graph.num_vertices(); ++v) {
    if (v % 2 == 0) {
      EXPECT_EQ(loaded.index->CountShortestCycles(v), expected[v])
          << "kept v=" << v;
    } else {
      EXPECT_EQ(loaded.index->CountShortestCycles(v), CycleCount{})
          << "dropped v=" << v;
    }
  }
}

// ApplyLabelPatch clones re-encode their runs into owned arenas: the clone
// must keep serving after both the index it was cloned from and the mapping
// that index was viewing are destroyed.
TEST(ViewLifetimeTest, PatchedCloneSurvivesSourceAndMappingDestruction) {
  TempFile file("patched");
  DiGraph graph = RandomGraph(70, 2.5, 404);
  std::unique_ptr<CycleIndex> built = MakeBackend("frozen");
  built->Build(graph);
  std::vector<CycleCount> expected =
      GroundTruth(*built, graph.num_vertices());
  ASSERT_TRUE(SaveBackendToFile(*built, file.path()));

  std::unique_ptr<CycleIndex> clone;
  {
    std::shared_ptr<IndexFile> mapping = IndexFile::Open(file.path());
    ASSERT_NE(mapping, nullptr);
    BackendLoadResult loaded = LoadBackendFromMapping(mapping, "frozen");
    ASSERT_TRUE(loaded.ok()) << loaded.error;
    ASSERT_TRUE(loaded.index->supports_label_patch());
    clone = loaded.index->ApplyLabelPatch(LabelPatch{});
    ASSERT_NE(clone, nullptr);
    // Source index and mapping handle both die here.
  }
  for (Vertex v = 0; v < graph.num_vertices(); ++v) {
    EXPECT_EQ(clone->CountShortestCycles(v), expected[v]) << "v=" << v;
  }
}

// A sharded engine loaded from one shared mapping, sliced to per-shard
// runs, must keep answering across repeated re-maps of the same file: each
// LoadFromFile generation opens a fresh mapping and retires the previous
// one, whose pages may only disappear once no shard snapshot views them.
TEST(ViewLifetimeTest, ShardedRemapGenerationsServeIdentically) {
  TempFile file("sharded_remap");
  DiGraph graph = RandomGraph(90, 2.5, 505);
  EngineOptions single_options;
  single_options.backend = "frozen";
  Engine single(single_options);
  ASSERT_TRUE(single.Build(graph));
  std::vector<CycleCount> expected = single.QueryAll();

  ShardedEngineOptions options;
  options.backend = "frozen";
  options.num_shards = 3;
  options.slice_labels = true;
  ShardedEngine built(options);
  ASSERT_TRUE(built.Build(graph));
  std::string payload;
  ASSERT_TRUE(built.SaveTo(payload));
  ASSERT_TRUE(SavePayloadToFile(payload, file.path()));

  ShardedEngine served(options);
  for (int generation = 0; generation < 8; ++generation) {
    std::string error;
    ASSERT_TRUE(served.LoadFromFile(file.path(), &error)) << error;
    EXPECT_EQ(served.QueryAll(), expected) << "generation=" << generation;
  }
}

// Readers keep querying retired snapshots while the writer re-maps the
// index file over and over: an in-flight query's snapshot must keep its
// generation's mapping alive after the swap retires it. Under ASan a
// dropped keep-alive is a use-after-munmap here, not a flake.
TEST(ViewLifetimeStressTest, ConcurrentQueriesAcrossRemapGenerations) {
  constexpr int kReaderThreads = 4;
  constexpr int kGenerations = 24;
  TempFile file("remap_stress");
  DiGraph graph = RandomGraph(80, 3.0, 606);
  EngineOptions options;
  options.backend = "frozen";
  Engine built(options);
  ASSERT_TRUE(built.Build(graph));
  std::vector<CycleCount> expected = built.QueryAll();
  std::string payload;
  ASSERT_TRUE(built.SaveTo(payload));
  ASSERT_TRUE(SavePayloadToFile(payload, file.path()));

  Engine served(options);
  std::string error;
  ASSERT_TRUE(served.LoadFromFile(file.path(), &error)) << error;

  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaderThreads);
  for (int t = 0; t < kReaderThreads; ++t) {
    readers.emplace_back([&, t] {
      Vertex v = static_cast<Vertex>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        if (served.Query(v) != expected[v]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        v = (v + 1) % graph.num_vertices();
      }
    });
  }
  // Writer: every LoadFromFile opens a fresh mapping and swaps it in; the
  // previous generation's mapping survives exactly as long as in-flight
  // readers hold its snapshot.
  for (int generation = 0; generation < kGenerations; ++generation) {
    ASSERT_TRUE(served.LoadFromFile(file.path(), &error)) << error;
  }
  stop.store(true);
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(served.QueryAll(), expected);
}

}  // namespace
}  // namespace csc
