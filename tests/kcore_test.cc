#include "graph/kcore.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "baseline/bfs_cycle.h"
#include "csc/csc_index.h"
#include "graph/generators.h"
#include "tests/test_util.h"

namespace csc {
namespace {

// Reference O(n^2 m)-ish core computation: repeatedly delete all vertices
// of degree < k in an induced-subgraph simulation.
std::vector<uint32_t> NaiveCores(const DiGraph& graph) {
  const Vertex n = graph.num_vertices();
  std::vector<uint32_t> core(n, 0);
  for (uint32_t k = 1;; ++k) {
    std::vector<bool> alive(n, true);
    // Peel everything below k to a fixed point.
    bool changed = true;
    while (changed) {
      changed = false;
      for (Vertex v = 0; v < n; ++v) {
        if (!alive[v]) continue;
        size_t degree = 0;
        for (Vertex w : graph.OutNeighbors(v)) degree += alive[w];
        for (Vertex w : graph.InNeighbors(v)) degree += alive[w];
        if (degree < k) {
          alive[v] = false;
          changed = true;
        }
      }
    }
    bool any = false;
    for (Vertex v = 0; v < n; ++v) {
      if (alive[v]) {
        core[v] = k;
        any = true;
      }
    }
    if (!any) return core;
  }
}

TEST(KCoreTest, EmptyAndEdgelessGraphs) {
  EXPECT_EQ(ComputeCores(DiGraph()).degeneracy, 0u);
  CoreDecomposition cores = ComputeCores(DiGraph(5));
  EXPECT_EQ(cores.degeneracy, 0u);
  for (uint32_t c : cores.core) EXPECT_EQ(c, 0u);
}

TEST(KCoreTest, CompleteDigraphCore) {
  // K_6 directed: every vertex has total degree 10; core = 10 everywhere.
  DiGraph complete = GenerateCompleteDigraph(6);
  CoreDecomposition cores = ComputeCores(complete);
  EXPECT_EQ(cores.degeneracy, 10u);
  for (uint32_t c : cores.core) EXPECT_EQ(c, 10u);
}

TEST(KCoreTest, PathHasCoreOne) {
  DiGraph path(4);
  path.AddEdge(0, 1);
  path.AddEdge(1, 2);
  path.AddEdge(2, 3);
  CoreDecomposition cores = ComputeCores(path);
  EXPECT_EQ(cores.degeneracy, 1u);
  for (uint32_t c : cores.core) EXPECT_EQ(c, 1u);
}

TEST(KCoreTest, CliqueWithTailSeparatesCores) {
  // 4-clique (total degree 6 inside) with a pendant path attached.
  DiGraph graph = GenerateCompleteDigraph(4);
  Vertex tail = graph.AddVertices(2);
  graph.AddEdge(0, tail);
  graph.AddEdge(tail, tail + 1);
  CoreDecomposition cores = ComputeCores(graph);
  for (Vertex v = 0; v < 4; ++v) EXPECT_EQ(cores.core[v], 6u);
  EXPECT_LE(cores.core[tail], 2u);
  EXPECT_EQ(cores.core[tail + 1], 1u);
  EXPECT_EQ(cores.VerticesInCore(6), (std::vector<Vertex>{0, 1, 2, 3}));
}

TEST(KCoreTest, MatchesNaivePeelingOnRandomGraphs) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    DiGraph graph = RandomGraph(60, 3.0, seed + 800);
    CoreDecomposition fast = ComputeCores(graph);
    std::vector<uint32_t> naive = NaiveCores(graph);
    EXPECT_EQ(fast.core, naive) << "seed " << seed;
    EXPECT_EQ(fast.degeneracy,
              *std::max_element(naive.begin(), naive.end()));
  }
}

TEST(KCoreTest, CoreIsMonotoneUnderEdgeInsertion) {
  DiGraph graph = RandomGraph(50, 2.0, 900);
  CoreDecomposition before = ComputeCores(graph);
  graph.AddEdge(0, 1);
  graph.AddEdge(2, 3);
  CoreDecomposition after = ComputeCores(graph);
  for (Vertex v = 0; v < graph.num_vertices(); ++v) {
    EXPECT_GE(after.core[v], before.core[v]) << "vertex " << v;
  }
}

TEST(CoreOrderingTest, IsAValidPermutationAndIndexStaysExact) {
  for (uint64_t seed = 0; seed < 4; ++seed) {
    DiGraph graph = RandomGraph(60, 2.5, seed + 950);
    VertexOrdering order = CoreOrdering(graph);
    ASSERT_EQ(order.rank_to_vertex.size(), graph.num_vertices());
    std::vector<bool> seen(graph.num_vertices(), false);
    for (Vertex v : order.rank_to_vertex) {
      ASSERT_FALSE(seen[v]);
      seen[v] = true;
    }
    CscIndex index = CscIndex::Build(graph, order);
    BfsCycleCounter oracle(graph);
    for (Vertex v = 0; v < graph.num_vertices(); ++v) {
      ASSERT_EQ(index.Query(v), oracle.CountCycles(v))
          << "seed " << seed << " vertex " << v;
    }
  }
}

TEST(CoreOrderingTest, HigherCoreRanksFirst) {
  DiGraph graph = GenerateCompleteDigraph(4);
  Vertex tail = graph.AddVertices(1);
  graph.AddEdge(0, tail);
  VertexOrdering order = CoreOrdering(graph);
  // The tail vertex (core 1) must rank last.
  EXPECT_EQ(order.rank_to_vertex.back(), tail);
}

}  // namespace
}  // namespace csc
