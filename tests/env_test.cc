#include "util/env.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace csc {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(EnvTest, WriteThenReadRoundTrips) {
  std::string path = TempPath("env_roundtrip.txt");
  ASSERT_TRUE(WriteStringToFile(path, "hello\nworld\n"));
  auto back = ReadFileToString(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, "hello\nworld\n");
  std::remove(path.c_str());
}

TEST(EnvTest, ReadMissingFileFails) {
  EXPECT_FALSE(ReadFileToString("/nonexistent/definitely/missing").has_value());
}

TEST(EnvTest, WriteToBadPathFails) {
  EXPECT_FALSE(WriteStringToFile("/nonexistent/dir/file.txt", "x"));
}

TEST(EnvTest, WriteOverwritesExisting) {
  std::string path = TempPath("env_overwrite.txt");
  ASSERT_TRUE(WriteStringToFile(path, "first"));
  ASSERT_TRUE(WriteStringToFile(path, "second"));
  EXPECT_EQ(ReadFileToString(path).value(), "second");
  std::remove(path.c_str());
}

TEST(EnvTest, RoundTripsBinaryContent) {
  std::string path = TempPath("env_binary.bin");
  std::string data;
  for (int i = 0; i < 256; ++i) data.push_back(static_cast<char>(i));
  ASSERT_TRUE(WriteStringToFile(path, data));
  EXPECT_EQ(ReadFileToString(path).value(), data);
  std::remove(path.c_str());
}

TEST(EnvTest, HumanBytesScales) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2 KB");
  EXPECT_EQ(HumanBytes(5ull * 1024 * 1024), "5 MB");
}

TEST(EnvTest, HumanSecondsScales) {
  EXPECT_EQ(HumanSeconds(2.0), "2 s");
  EXPECT_EQ(HumanSeconds(0.002), "2 ms");
  EXPECT_EQ(HumanSeconds(2e-6), "2 us");
}

}  // namespace
}  // namespace csc
