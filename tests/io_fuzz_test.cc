// Deterministic fuzzing of the three byte-consuming entry points: the SNAP
// edge-list parser, the compact-index deserializer, and the checksummed
// file loader. None of them may crash, hang, or return a structurally
// broken object on arbitrary input — they either parse or reject.
#include <string>

#include <gtest/gtest.h>

#include "csc/compact_index.h"
#include "csc/csc_index.h"
#include "csc/index_io.h"
#include "graph/graph_io.h"
#include "graph/ordering.h"
#include "tests/test_util.h"
#include "util/env.h"
#include "util/random.h"

namespace csc {
namespace {

// Random bytes, biased toward printable/structural characters so the parser
// fuzz actually exercises tokenizer paths, not just "binary garbage".
std::string RandomBytes(Rng& rng, size_t size, bool printable_bias) {
  static const char kStructural[] = "0123456789 \t\n#%-+.eE";
  std::string out;
  out.reserve(size);
  for (size_t i = 0; i < size; ++i) {
    if (printable_bias && rng.NextBool(0.8)) {
      out.push_back(kStructural[rng.NextBounded(sizeof(kStructural) - 1)]);
    } else {
      out.push_back(static_cast<char>(rng.NextBounded(256)));
    }
  }
  return out;
}

TEST(ParserFuzzTest, ArbitraryTextNeverCrashesAndResultIsConsistent) {
  Rng rng(1);
  for (int round = 0; round < 300; ++round) {
    std::string text = RandomBytes(rng, rng.NextBounded(400), true);
    std::optional<DiGraph> graph = ParseEdgeList(text);
    if (!graph) continue;
    // Whatever parsed must be a structurally sound graph.
    uint64_t edges = 0;
    for (Vertex v = 0; v < graph->num_vertices(); ++v) {
      EXPECT_FALSE(graph->HasEdge(v, v));
      edges += graph->OutDegree(v);
    }
    EXPECT_EQ(edges, graph->num_edges());
    // And it must round trip through the writer exactly.
    std::optional<DiGraph> reparsed = ParseEdgeList(ToEdgeListText(*graph));
    ASSERT_TRUE(reparsed.has_value());
    EXPECT_EQ(*reparsed, *graph);
  }
}

TEST(ParserFuzzTest, MutatedValidInputNeverCrashes) {
  std::string valid = ToEdgeListText(RandomGraph(30, 2.5, 2));
  Rng rng(3);
  for (int round = 0; round < 300; ++round) {
    std::string mutated = valid;
    // Flip a handful of random bytes.
    for (int flips = 0; flips < 4; ++flips) {
      mutated[rng.NextBounded(mutated.size())] =
          static_cast<char>(rng.NextBounded(256));
    }
    ParseEdgeList(mutated);  // must not crash; result value is free
  }
}

TEST(DeserializeFuzzTest, ArbitraryBytesRejectedOrParsed) {
  Rng rng(4);
  for (int round = 0; round < 300; ++round) {
    std::string bytes = RandomBytes(rng, rng.NextBounded(600), false);
    std::optional<CompactIndex> index = CompactIndex::Deserialize(bytes);
    if (index) {
      // If it parsed, queries on every declared vertex must be safe.
      for (Vertex v = 0; v < index->num_original_vertices(); ++v) {
        index->Query(v);
      }
    }
  }
}

TEST(DeserializeFuzzTest, TruncationsOfValidPayloadAreRejected) {
  DiGraph graph = RandomGraph(40, 2.5, 5);
  CscIndex index = CscIndex::Build(graph, DegreeOrdering(graph));
  std::string bytes = CompactIndex::FromIndex(index).Serialize();
  // Every strict prefix must be rejected (or at minimum not crash); step a
  // prime to keep runtime bounded.
  for (size_t cut = 0; cut < bytes.size(); cut += 7) {
    std::optional<CompactIndex> parsed =
        CompactIndex::Deserialize(bytes.substr(0, cut));
    EXPECT_FALSE(parsed.has_value()) << "prefix of " << cut << " bytes";
  }
}

TEST(IndexFileFuzzTest, RandomFilesNeverLoad) {
  std::string path = ::testing::TempDir() + "csc_fuzz_index.idx";
  Rng rng(6);
  for (int round = 0; round < 60; ++round) {
    ASSERT_TRUE(
        WriteStringToFile(path, RandomBytes(rng, rng.NextBounded(500), false)));
    IndexLoadResult result = LoadIndexFromFile(path);
    // 16-byte magic+size headers plus CRC make an accidental pass
    // effectively impossible; assert it outright.
    EXPECT_FALSE(result.ok()) << "round " << round;
    EXPECT_FALSE(result.error.empty());
  }
  std::remove(path.c_str());
}

TEST(IndexFileFuzzTest, ByteFlipsOnValidFileAreAlwaysRejected) {
  std::string path = ::testing::TempDir() + "csc_fuzz_flip.idx";
  DiGraph graph = RandomGraph(30, 2.0, 7);
  CscIndex index = CscIndex::Build(graph, DegreeOrdering(graph));
  ASSERT_TRUE(SaveIndexToFile(CompactIndex::FromIndex(index), path));
  std::string pristine = *ReadFileToString(path);

  Rng rng(8);
  for (int round = 0; round < 200; ++round) {
    std::string corrupted = pristine;
    size_t pos = rng.NextBounded(corrupted.size());
    char flip = static_cast<char>(1 + rng.NextBounded(255));
    corrupted[pos] ^= flip;
    ASSERT_TRUE(WriteStringToFile(path, corrupted));
    IndexLoadResult result = LoadIndexFromFile(path);
    EXPECT_FALSE(result.ok()) << "byte " << pos << " xor " << int{flip};
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace csc
