#include "util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace csc {
namespace {

TEST(ThreadPoolTest, ZeroThreadsCoercedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPoolTest, WaitCanBeRepeated) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No Wait(): the destructor must still run all 50.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, WaitRethrowsTaskException) {
  // Regression: an exception escaping a task used to unwind through the
  // worker's std::function call and terminate the process (or vanish).
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
}

TEST(ThreadPoolTest, WaitRethrowsFirstExceptionAndRunsRemainingTasks) {
  ThreadPool pool(1);  // one worker => deterministic task order
  std::atomic<int> completed{0};
  pool.Submit([] { throw std::runtime_error("first"); });
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&completed] { completed.fetch_add(1); });
  }
  pool.Submit([] { throw std::logic_error("second"); });
  try {
    pool.Wait();
    FAIL() << "Wait() must rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");  // first capture wins; later dropped
  }
  // Every non-throwing task still ran: a throwing task never cancels the
  // rest of the queue.
  EXPECT_EQ(completed.load(), 20);
}

TEST(ThreadPoolTest, ExceptionClearedAfterRethrow) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The pool stays usable and a clean Wait() does not rethrow again.
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, DefaultThreadCountIsPositiveAndBounded) {
  unsigned count = ThreadPool::DefaultThreadCount();
  EXPECT_GE(count, 1u);
  EXPECT_LE(count, 64u);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(pool, 0, hits.size(), 37, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, EmptyRangeRunsNothing) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  ParallelFor(pool, 5, 5, 10,
              [&](size_t, size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, ZeroGrainCoercedToOne) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  ParallelFor(pool, 0, 10, 0, [&](size_t begin, size_t end) {
    EXPECT_EQ(end, begin + 1);  // grain 1 -> single-element chunks
    total.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(total.load(), 10);
}

TEST(ParallelForTest, RethrowsBodyException) {
  // Regression: ParallelFor used to lose body exceptions entirely.
  ThreadPool pool(4);
  std::atomic<int> chunks{0};
  EXPECT_THROW(
      ParallelFor(pool, 0, 100, 10,
                  [&chunks](size_t begin, size_t) {
                    chunks.fetch_add(1);
                    if (begin == 50) throw std::runtime_error("chunk failed");
                  }),
      std::runtime_error);
  EXPECT_EQ(chunks.load(), 10);  // every chunk still ran
}

TEST(ParallelForTest, MatchesSequentialReduction) {
  ThreadPool pool(ThreadPool::DefaultThreadCount());
  std::vector<int> data(10000);
  std::iota(data.begin(), data.end(), 0);
  std::atomic<long long> parallel_sum{0};
  ParallelFor(pool, 0, data.size(), 128, [&](size_t begin, size_t end) {
    long long local = 0;
    for (size_t i = begin; i < end; ++i) local += data[i];
    parallel_sum.fetch_add(local);
  });
  long long sequential = std::accumulate(data.begin(), data.end(), 0LL);
  EXPECT_EQ(parallel_sum.load(), sequential);
}

TEST(SerialWorkerTest, RunsTasksInSubmissionOrder) {
  SerialWorker worker;
  std::vector<int> order;  // written only from the single worker thread
  for (int i = 0; i < 100; ++i) {
    worker.Submit([&order, i] { order.push_back(i); });
  }
  worker.Drain();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(SerialWorkerTest, DrainWithNoTasksReturnsImmediately) {
  SerialWorker worker;
  worker.Drain();  // must not deadlock
  EXPECT_EQ(worker.pending(), 0u);
}

TEST(SerialWorkerTest, DestructorCompletesQueuedTasks) {
  std::atomic<int> completed{0};
  {
    SerialWorker worker;
    for (int i = 0; i < 50; ++i) {
      worker.Submit([&completed] { completed.fetch_add(1); });
    }
  }
  EXPECT_EQ(completed.load(), 50);
}

TEST(SerialWorkerTest, LaterTasksSeeEarlierEffects) {
  // The coalescing pattern the serving Engine relies on: a task may no-op
  // because a predecessor already covered its work.
  SerialWorker worker;
  int covered_up_to = 0;  // worker-thread-only state
  std::atomic<int> rebuilds{0};
  for (int i = 1; i <= 20; ++i) {
    worker.Submit([&, i] {
      if (covered_up_to >= i) return;
      covered_up_to = 20;  // one "rebuild" covers the whole backlog
      rebuilds.fetch_add(1);
    });
  }
  worker.Drain();
  // FIFO order makes this deterministic: the first task covers the whole
  // backlog, every later task finds its work already done.
  EXPECT_EQ(rebuilds.load(), 1);
  EXPECT_EQ(covered_up_to, 20);
}

}  // namespace
}  // namespace csc
