// Randomized mixed insert/delete sequences: after every update the
// maintained index must agree with BFS ground truth on every vertex, and
// (in minimality mode) with a from-scratch rebuild entry-for-entry.
#include <gtest/gtest.h>

#include <tuple>

#include "baseline/bfs_cycle.h"
#include "dynamic/decremental.h"
#include "dynamic/incremental.h"
#include "graph/generators.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace csc {
namespace {

using Param = std::tuple<uint64_t, bool>;  // seed, minimality

class MixedUpdateTest : public ::testing::TestWithParam<Param> {};

TEST_P(MixedUpdateTest, RandomUpdateSequenceStaysExact) {
  auto [seed, minimality] = GetParam();
  MaintenanceStrategy strategy = minimality
                                     ? MaintenanceStrategy::kMinimality
                                     : MaintenanceStrategy::kRedundancy;
  DiGraph g = RandomGraph(30, 2.0, seed);
  VertexOrdering order = DegreeOrdering(g);
  CscIndex index = CscIndex::Build(g, order);
  Rng rng(seed * 977 + 5);
  bool inserted_any = false;
  for (int step = 0; step < 30; ++step) {
    bool do_insert = rng.NextBool(0.5);
    // Decremental maintenance assumes a minimal index (DESIGN.md §4): under
    // the redundancy strategy, stop deleting once any insertion may have
    // left redundant entries behind.
    if (!minimality && inserted_any) do_insert = true;
    if (do_insert) {
      Vertex u = static_cast<Vertex>(rng.NextBounded(g.num_vertices()));
      Vertex v = static_cast<Vertex>(rng.NextBounded(g.num_vertices()));
      if (u == v || g.HasEdge(u, v)) continue;
      ASSERT_TRUE(InsertEdge(index, u, v, strategy));
      ASSERT_TRUE(g.AddEdge(u, v));
      inserted_any = true;
    } else {
      std::vector<Edge> edges = g.Edges();
      if (edges.empty()) continue;
      Edge e = edges[rng.NextBounded(edges.size())];
      ASSERT_TRUE(RemoveEdge(index, e.from, e.to));
      ASSERT_TRUE(g.RemoveEdge(e.from, e.to));
    }
    BfsCycleCounter bfs(g);
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(index.Query(v), bfs.CountCycles(v))
          << "seed=" << seed << " step=" << step << " vertex=" << v;
    }
    if (minimality) {
      CscIndex fresh = CscIndex::Build(g, order);
      ASSERT_EQ(index.labeling(), fresh.labeling())
          << "seed=" << seed << " step=" << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndStrategies, MixedUpdateTest,
    ::testing::Combine(::testing::Values<uint64_t>(1, 2, 3, 4, 5, 6),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<Param>& info) {
      return std::string(std::get<1>(info.param) ? "Minimality"
                                                 : "Redundancy") +
             "_s" + std::to_string(std::get<0>(info.param));
    });

TEST(DynamicStressTest, GrowGraphFromScratchByInsertions) {
  // Build an index on an empty edge set and construct the whole graph
  // through maintenance alone.
  DiGraph empty(20);
  VertexOrdering order = DegreeOrdering(empty);
  CscIndex index = CscIndex::Build(empty, order);
  DiGraph g(20);
  Rng rng(12345);
  for (int i = 0; i < 60; ++i) {
    Vertex u = static_cast<Vertex>(rng.NextBounded(20));
    Vertex v = static_cast<Vertex>(rng.NextBounded(20));
    if (u == v || g.HasEdge(u, v)) continue;
    ASSERT_TRUE(InsertEdge(index, u, v, MaintenanceStrategy::kMinimality));
    ASSERT_TRUE(g.AddEdge(u, v));
  }
  BfsCycleCounter bfs(g);
  for (Vertex v = 0; v < 20; ++v) {
    EXPECT_EQ(index.Query(v), bfs.CountCycles(v)) << "vertex " << v;
  }
  CscIndex fresh = CscIndex::Build(g, order);
  EXPECT_EQ(index.labeling(), fresh.labeling());
}

TEST(DynamicStressTest, TearDownGraphByDeletions) {
  DiGraph g = RandomGraph(25, 2.0, 777);
  VertexOrdering order = DegreeOrdering(g);
  CscIndex index = CscIndex::Build(g, order);
  std::vector<Edge> edges = g.Edges();
  for (const Edge& e : edges) {
    ASSERT_TRUE(RemoveEdge(index, e.from, e.to));
    ASSERT_TRUE(g.RemoveEdge(e.from, e.to));
  }
  EXPECT_EQ(g.num_edges(), 0u);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(index.Query(v), (CycleCount{kInfDist, 0}));
  }
  // Only self labels should remain, exactly like a fresh empty build.
  CscIndex fresh = CscIndex::Build(g, order);
  EXPECT_EQ(index.labeling(), fresh.labeling());
}

}  // namespace
}  // namespace csc
