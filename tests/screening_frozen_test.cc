#include <gtest/gtest.h>

#include "csc/csc_index.h"
#include "csc/frozen_index.h"
#include "csc/screening.h"
#include "graph/ordering.h"
#include "tests/test_util.h"
#include "util/thread_pool.h"

namespace csc {
namespace {

TEST(FrozenScreeningTest, MatchesDynamicScreening) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    DiGraph graph = RandomGraph(80, 3.0, seed + 40);
    CscIndex index = CscIndex::Build(graph, DegreeOrdering(graph));
    FrozenIndex frozen = FrozenIndex::FromIndex(index);
    for (Dist max_len : {Dist{2}, Dist{4}, kInfDist}) {
      std::vector<ScreeningHit> dynamic_hits =
          TopKByCycleCount(index, max_len, 10);
      std::vector<ScreeningHit> frozen_hits =
          TopKByCycleCount(frozen, max_len, 10);
      EXPECT_EQ(frozen_hits, dynamic_hits)
          << "seed " << seed << " max_len " << max_len;
    }
  }
}

TEST(FrozenScreeningTest, ParallelMatchesSequential) {
  ThreadPool pool(4);
  for (uint64_t seed = 0; seed < 5; ++seed) {
    DiGraph graph = RandomGraph(120, 3.0, seed + 50);
    FrozenIndex frozen =
        FrozenIndex::FromIndex(CscIndex::Build(graph, DegreeOrdering(graph)));
    std::vector<ScreeningHit> sequential =
        TopKByCycleCount(frozen, kInfDist, 15);
    std::vector<ScreeningHit> parallel =
        TopKByCycleCount(frozen, kInfDist, 15, pool);
    EXPECT_EQ(parallel, sequential) << "seed " << seed;
  }
}

TEST(FrozenScreeningTest, EmptyGraphAndZeroK) {
  ThreadPool pool(2);
  FrozenIndex frozen = FrozenIndex::FromIndex(
      CscIndex::Build(DiGraph(), DegreeOrdering(DiGraph())));
  EXPECT_TRUE(TopKByCycleCount(frozen, kInfDist, 5).empty());
  EXPECT_TRUE(TopKByCycleCount(frozen, kInfDist, 5, pool).empty());

  DiGraph triangle(3);
  triangle.AddEdge(0, 1);
  triangle.AddEdge(1, 2);
  triangle.AddEdge(2, 0);
  FrozenIndex tri = FrozenIndex::FromIndex(
      CscIndex::Build(triangle, DegreeOrdering(triangle)));
  EXPECT_TRUE(TopKByCycleCount(tri, kInfDist, 0).empty());
}

}  // namespace
}  // namespace csc
