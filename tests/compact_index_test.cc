#include "csc/compact_index.h"

#include <gtest/gtest.h>

#include "baseline/bfs_cycle.h"
#include "tests/test_util.h"

namespace csc {
namespace {

TEST(CompactIndexTest, QueriesMatchFullIndex) {
  DiGraph g = RandomGraph(80, 2.5, 3);
  CscIndex full = CscIndex::Build(g, DegreeOrdering(g));
  CompactIndex compact = CompactIndex::FromIndex(full);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(compact.Query(v), full.Query(v)) << "vertex " << v;
  }
}

TEST(CompactIndexTest, HalvesTheEntryCountRoughly) {
  DiGraph g = RandomGraph(100, 3.0, 5);
  CscIndex full = CscIndex::Build(g, DegreeOrdering(g));
  CompactIndex compact = CompactIndex::FromIndex(full);
  EXPECT_LT(compact.TotalEntries(), full.TotalEntries() * 6 / 10);
  EXPECT_GT(compact.TotalEntries(), 0u);
}

TEST(CompactIndexTest, ExpandToFullReconstructsExactLabeling) {
  // §IV.E round trip: compact then expand must equal the built labeling —
  // this validates both the reduction rule and the couple-label claims the
  // construction makes.
  for (uint64_t seed = 0; seed < 6; ++seed) {
    DiGraph g = RandomGraph(60, 2.5, seed);
    CscIndex full = CscIndex::Build(g, DegreeOrdering(g));
    CompactIndex compact = CompactIndex::FromIndex(full);
    HubLabeling expanded = compact.ExpandToFull();
    ASSERT_EQ(expanded, full.labeling()) << "seed " << seed;
  }
}

TEST(CompactIndexTest, ExpandFigure2) {
  DiGraph g = Figure2Graph();
  CscIndex full = CscIndex::Build(g, Figure2Ordering());
  HubLabeling expanded = CompactIndex::FromIndex(full).ExpandToFull();
  EXPECT_EQ(expanded, full.labeling());
}

TEST(CompactIndexTest, SerializeDeserializeRoundTrip) {
  DiGraph g = RandomGraph(70, 2.0, 9);
  CscIndex full = CscIndex::Build(g, DegreeOrdering(g));
  CompactIndex compact = CompactIndex::FromIndex(full);
  std::string bytes = compact.Serialize();
  auto back = CompactIndex::Deserialize(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, compact);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(back->Query(v), full.Query(v));
  }
}

TEST(CompactIndexTest, DeserializeRejectsCorruptInput) {
  DiGraph g = RandomGraph(30, 2.0, 11);
  CompactIndex compact =
      CompactIndex::FromIndex(CscIndex::Build(g, DegreeOrdering(g)));
  std::string bytes = compact.Serialize();
  EXPECT_FALSE(CompactIndex::Deserialize("").has_value());
  EXPECT_FALSE(CompactIndex::Deserialize("JUNK").has_value());
  EXPECT_FALSE(
      CompactIndex::Deserialize(bytes.substr(0, bytes.size() / 2)).has_value());
  std::string wrong_magic = bytes;
  wrong_magic[0] = 'X';
  EXPECT_FALSE(CompactIndex::Deserialize(wrong_magic).has_value());
  std::string trailing = bytes + "x";
  EXPECT_FALSE(CompactIndex::Deserialize(trailing).has_value());
}

TEST(CompactIndexTest, DeserializeRejectsCorruptPermutation) {
  DiGraph g = RandomGraph(20, 2.0, 13);
  CompactIndex compact =
      CompactIndex::FromIndex(CscIndex::Build(g, DegreeOrdering(g)));
  std::string bytes = compact.Serialize();
  // Duplicate the first permutation entry into the second slot.
  // Layout: magic(4) + version(4) + n(4) + perm entries...
  for (int i = 0; i < 4; ++i) bytes[16 + i] = bytes[12 + i];
  EXPECT_FALSE(CompactIndex::Deserialize(bytes).has_value());
}

TEST(CompactIndexTest, EmptyGraphSerializes) {
  DiGraph g;
  CompactIndex compact =
      CompactIndex::FromIndex(CscIndex::Build(g, DegreeOrdering(g)));
  auto back = CompactIndex::Deserialize(compact.Serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->num_original_vertices(), 0u);
}

}  // namespace
}  // namespace csc
