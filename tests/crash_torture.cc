// Crash-torture driver: kills the process at every persistence failpoint
// and proves recovery.
//
// For each (site, countdown) in the torture matrix the parent forks a
// CRASHER child that arms the site in kAbort mode and runs a deterministic
// serving workload (build with a WAL, acknowledge batches, checkpoint
// mid-way, acknowledge more). The child dies by _Exit(134) at the armed
// site — no unwinding, no flushing, exactly like a power cut at that
// instant. The parent then forks a clean VERIFIER child that:
//
//   1. recovers an Engine from whatever the crash left on disk
//      (Engine::RecoverFromFile over the index file + WAL),
//   2. rebuilds an oracle from the surviving WAL records directly
//      (checkpoint base graph + non-rolled-back batches, applied through a
//      WAL-less engine) and requires the recovered serialization to be
//      byte-identical, and
//   3. requires every epoch the crasher acknowledged *after the last
//      checkpoint* to be present in the log — durability before
//      acknowledgment (acks are recorded in a side file, fsync'd line by
//      line, so the ack record is itself crash-consistent).
//
// A second phase then targets recovery itself: after a clean workload run,
// a child is killed at each recovery-path failpoint (base rebuild, replay
// appends into the staged log generation, the publishing rename) and a
// clean re-recovery must still match the oracle — the window where a
// recovery that truncated the log before finishing its replay would lose
// acknowledged batches.
//
// The parent never constructs an Engine (fork would duplicate its thread
// pool mid-state); all engine work happens in freshly forked children.
//
// Exit status: 0 when every scenario verifies, 1 otherwise. Registered as a
// CTest test (see tests/CMakeLists.txt). POSIX-only; a stub main keeps the
// target building elsewhere.

#if defined(_WIN32)
#include <cstdio>
int main() {
  std::printf("crash_torture: skipped (POSIX-only)\n");
  return 0;
}
#else

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "graph/digraph.h"
#include "graph/generators.h"
#include "serving/engine.h"
#include "serving/wal.h"
#include "util/env.h"
#include "util/failpoint.h"

namespace csc {
namespace {

struct Paths {
  std::string index;
  std::string wal;
  std::string acks;
};

DiGraph WorkloadGraph() { return GenerateErdosRenyi(40, 100, /*seed=*/7); }

std::vector<std::vector<EdgeUpdate>> WorkloadBatches() {
  // Deterministic, index-affecting batches; enough of them that countdowns
  // up to 4 hit wal.append / atomic_write sites at different phases.
  std::vector<std::vector<EdgeUpdate>> batches;
  for (uint32_t i = 0; i < 6; ++i) {
    batches.push_back({EdgeUpdate::Insert(i, (i + 7) % 40),
                       EdgeUpdate::Insert((i + 13) % 40, i),
                       EdgeUpdate::Remove(i, (i + 1) % 40)});
  }
  return batches;
}

EngineOptions WorkloadOptions(const Paths& paths) {
  EngineOptions options;
  options.backend = "frozen";
  options.wal_path = paths.wal;
  return options;
}

// Appends one line to the ack file and fsyncs it, so an acknowledgment
// recorded here has the same durability the engine promised the caller.
bool AppendAckLine(const std::string& path, const std::string& line) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                  0644);
  if (fd < 0) return false;
  std::string data = line + "\n";
  bool ok = ::write(fd, data.data(), data.size()) ==
                static_cast<ssize_t>(data.size()) &&
            ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

// The crasher body: run the workload to completion (the armed abort kills
// the process somewhere in the middle; an empty site runs clean). Exit 0 =
// the site never fired.
int RunCrasher(const Paths& paths, const std::string& site,
               uint32_t countdown) {
  if (!site.empty()) {
    FailpointAction action;
    action.mode = FailpointMode::kAbort;
    action.countdown = countdown;
    Failpoints::Instance().Set(site, action);
  }

  Engine engine(WorkloadOptions(paths));
  if (!engine.Build(WorkloadGraph())) return 2;
  std::vector<std::vector<EdgeUpdate>> batches = WorkloadBatches();
  for (size_t i = 0; i < batches.size(); ++i) {
    uint64_t epoch = 0;
    size_t applied = engine.ApplyUpdates(batches[i], nullptr, &epoch);
    if (applied > 0 && engine.WaitForEpoch(epoch)) {
      if (!AppendAckLine(paths.acks, std::to_string(epoch))) return 2;
    }
    if (i == 2) {
      // "ckpt-begin" marks the folding window: once Checkpoint starts, the
      // WAL truncation may fold earlier acks into the checkpoint record at
      // any instant, so the verifier must accept either placement for them.
      if (!AppendAckLine(paths.acks, "ckpt-begin")) return 2;
      std::string error;
      if (engine.Checkpoint(paths.index, &error)) {
        if (!AppendAckLine(paths.acks, "ckpt")) return 2;
      }
    }
  }
  return 0;
}

// Builds the replay oracle from `records` (checkpoint base graph +
// surviving batches minus rolled-back epochs, applied through a WAL-less
// engine), recovers an Engine from disk, and requires the serializations to
// match byte-for-byte. `records.front()` must be a checkpoint record.
int OracleVsRecovery(const Paths& paths, const std::vector<WalRecord>& records,
                     const std::string& scenario) {
  auto fail = [&scenario](const std::string& why) {
    std::fprintf(stderr, "FAIL [%s]: %s\n", scenario.c_str(), why.c_str());
    return 1;
  };
  DiGraph base =
      DiGraph::FromEdges(records.front().num_vertices, records.front().edges);
  std::vector<std::pair<uint64_t, uint64_t>> rolled_back;
  for (const WalRecord& record : records) {
    if (record.type == WalRecordType::kRollback) {
      rolled_back.emplace_back(record.epoch, record.epoch_last);
    }
  }
  EngineOptions oracle_options;
  oracle_options.backend = "frozen";
  Engine oracle(oracle_options);
  if (!oracle.Build(base)) return fail("oracle build failed");
  for (const WalRecord& record : records) {
    if (record.type != WalRecordType::kBatch) continue;
    bool skip = false;
    for (const auto& [first, last] : rolled_back) {
      if (record.epoch >= first && record.epoch <= last) skip = true;
    }
    if (skip) continue;
    oracle.ApplyUpdates(record.updates);
  }

  Engine recovered(WorkloadOptions(paths));
  std::string error;
  if (!recovered.RecoverFromFile(paths.index, &error)) {
    return fail("recovery failed: " + error);
  }
  std::string oracle_bytes, recovered_bytes;
  if (!oracle.SaveTo(oracle_bytes) || !recovered.SaveTo(recovered_bytes)) {
    return fail("serialization failed");
  }
  if (oracle_bytes != recovered_bytes) {
    return fail("recovered state differs from the replay oracle");
  }
  return 0;
}

// The recovery-crasher body: arm the site and recover from whatever the
// clean workload run left on disk — the abort kills the process mid-replay
// (or mid-publish), exactly the window where a naive recovery would have
// already truncated the log it is still replaying.
int RunRecoveryCrasher(const Paths& paths, const std::string& site,
                       uint32_t countdown) {
  FailpointAction action;
  action.mode = FailpointMode::kAbort;
  action.countdown = countdown;
  Failpoints::Instance().Set(site, action);
  Engine engine(WorkloadOptions(paths));
  std::string error;
  (void)engine.RecoverFromFile(paths.index, &error);
  return 0;
}

// The verifier body: reads the crash-time log, checks ack durability,
// builds the replay oracle, then recovers and compares byte-for-byte. The
// oracle is built from the log BEFORE RecoverFromFile runs, because
// recovery re-establishes a fresh log in place of the crash-time one.
int RunOracleAndVerify(const Paths& paths, const std::string& scenario) {
  auto fail = [&scenario](const std::string& why) {
    std::fprintf(stderr, "FAIL [%s]: %s\n", scenario.c_str(), why.c_str());
    return 1;
  };

  // 1. Read the crash-time log (tolerates a torn tail).
  std::vector<WalRecord> records;
  std::string error;
  if (!Wal::ReadAll(paths.wal, &records, &error)) {
    return fail("crash-time WAL unreadable: " + error);
  }

  // 2. Durability before acknowledgment: every acked epoch must survive in
  // the log. Epochs acked after the last completed checkpoint must appear
  // as batch records. Epochs acked before a checkpoint that was IN FLIGHT
  // at crash time ("ckpt-begin" with no matching "ckpt") are allowed to be
  // folded instead: the truncated log's checkpoint record absorbs them —
  // but only when the log's checkpoint graph provably differs from the
  // build-time base, i.e. a fold really happened.
  std::vector<uint64_t> acked;       // must be batch records
  std::vector<uint64_t> maybe_folded;  // batch record OR folded checkpoint
  bool checkpoint_in_flight = false;
  {
    std::FILE* f = std::fopen(paths.acks.c_str(), "r");
    if (f != nullptr) {
      char line[64];
      while (std::fgets(line, sizeof(line), f) != nullptr) {
        if (std::strncmp(line, "ckpt-begin", 10) == 0) {
          maybe_folded = acked;
          acked.clear();
          checkpoint_in_flight = true;
        } else if (std::strncmp(line, "ckpt", 4) == 0) {
          maybe_folded.clear();  // checkpoint completed: folds are final
          acked.clear();
          checkpoint_in_flight = false;
        } else {
          acked.push_back(std::strtoull(line, nullptr, 10));
        }
      }
      std::fclose(f);
    }
  }
  if (!checkpoint_in_flight) maybe_folded.clear();
  bool checkpointed = !records.empty() &&
                      records.front().type == WalRecordType::kCheckpoint;
  bool folded = false;
  if (checkpointed) {
    // A fold changed the checkpoint graph away from the build-time base.
    const DiGraph base = WorkloadGraph();
    DiGraph logged =
        DiGraph::FromEdges(records.front().num_vertices, records.front().edges);
    folded = logged.num_vertices() != base.num_vertices() ||
             logged.num_edges() != base.num_edges();
    for (Vertex v = 0; !folded && v < base.num_vertices(); ++v) {
      if (base.OutNeighbors(v) != logged.OutNeighbors(v)) folded = true;
    }
  }
  auto in_log = [&records](uint64_t epoch) {
    for (const WalRecord& record : records) {
      if (record.type == WalRecordType::kBatch && record.epoch == epoch) {
        return true;
      }
    }
    return false;
  };
  if (checkpointed) {
    for (uint64_t epoch : acked) {
      if (!in_log(epoch)) {
        return fail("acked epoch " + std::to_string(epoch) +
                    " missing from the log");
      }
    }
    for (uint64_t epoch : maybe_folded) {
      if (!in_log(epoch) && !folded) {
        return fail("acked epoch " + std::to_string(epoch) +
                    " neither in the log nor folded into its checkpoint");
      }
    }
  }

  // 3 + 4. Oracle replay and byte-for-byte comparison (shared with the
  // recovery-crash verifier below).
  if (!checkpointed) {
    // The crash predates any complete log (e.g. wal.checkpoint abort in
    // Build): with nothing acknowledged there is nothing to verify.
    if (!acked.empty() || !maybe_folded.empty()) {
      return fail("acks exist but no checkpoint survived");
    }
    return 0;
  }
  return OracleVsRecovery(paths, records, scenario);
}

// The recovery-crash verifier body. The oracle comes from the log as it
// stood BEFORE the crashed recovery ran (the parent snapshots it): that is
// the acknowledged history, and it must survive no matter where recovery
// died. The actual recovery then runs against whatever the crash left —
// the pre-crash generation when the staged replacement never published,
// the replayed generation when it did; both must reproduce the oracle
// byte-for-byte. A recovery that truncated the log before finishing its
// replay fails here: the post-crash log can no longer rebuild the oracle's
// state. (Ack-epoch checks don't apply: recovery renumbers epochs.)
int RunRecoveryCrashVerify(const Paths& paths,
                           const std::string& precrash_wal,
                           const std::string& scenario) {
  auto fail = [&scenario](const std::string& why) {
    std::fprintf(stderr, "FAIL [%s]: %s\n", scenario.c_str(), why.c_str());
    return 1;
  };
  std::vector<WalRecord> records;
  std::string error;
  if (!Wal::ReadAll(precrash_wal, &records, &error)) {
    return fail("pre-crash WAL snapshot unreadable: " + error);
  }
  if (records.empty() || records.front().type != WalRecordType::kCheckpoint) {
    // The clean workload run checkpointed; an empty snapshot means the
    // parent's copy step failed, not a durability bug.
    return fail("pre-crash WAL snapshot has no checkpoint");
  }
  return OracleVsRecovery(paths, records, scenario);
}

int RunParent(const std::string& dir) {
  struct Scenario {
    const char* site;
    uint32_t countdown;
  };
  // Every persistence failpoint, each at several countdowns so the abort
  // lands in different phases of the workload (initial log create,
  // steady-state appends, the checkpoint's save + truncate).
  const std::vector<Scenario> scenarios = {
      {"wal.open", 1},          {"wal.open", 2},
      {"wal.append", 1},        {"wal.append", 2},
      {"wal.append", 4},        {"wal.fsync", 1},
      {"wal.fsync", 3},         {"wal.checkpoint", 1},
      {"wal.checkpoint", 2},    {"atomic_write.open", 1},
      {"atomic_write.open", 2}, {"atomic_write.write", 1},
      {"atomic_write.write", 2}, {"atomic_write.fsync", 1},
      {"atomic_write.fsync", 2}, {"atomic_write.rename", 1},
      {"atomic_write.rename", 2}, {"index_io.write", 1},
  };
  int failures = 0;
  int crashes = 0;
  for (const Scenario& scenario : scenarios) {
    Paths paths;
    std::string prefix = dir + "/" + scenario.site + "." +
                         std::to_string(scenario.countdown);
    paths.index = prefix + ".idx";
    paths.wal = prefix + ".wal";
    paths.acks = prefix + ".acks";
    ::unlink(paths.index.c_str());
    ::unlink(paths.wal.c_str());
    ::unlink(paths.acks.c_str());

    // Flush before forking: the children inherit the stdio buffers, and the
    // abort path exits through std::_Exit which would otherwise replay any
    // buffered parent output.
    std::fflush(stdout);
    std::fflush(stderr);
    pid_t crasher = ::fork();
    if (crasher == 0) {
      ::_exit(RunCrasher(paths, scenario.site, scenario.countdown));
    }
    int status = 0;
    ::waitpid(crasher, &status, 0);
    bool crashed = WIFEXITED(status) && WEXITSTATUS(status) == 134;
    bool survived = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    if (!crashed && !survived) {
      std::fprintf(stderr, "FAIL [%s@%u]: crasher exited abnormally (%d)\n",
                   scenario.site, scenario.countdown, status);
      ++failures;
      continue;
    }
    if (crashed) ++crashes;

    std::string name = std::string(scenario.site) + "@" +
                       std::to_string(scenario.countdown);
    pid_t verifier = ::fork();
    if (verifier == 0) {
      ::_exit(RunOracleAndVerify(paths, name));
    }
    ::waitpid(verifier, &status, 0);
    bool verified = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    std::printf("%-28s %s -> %s\n", name.c_str(),
                crashed ? "crashed " : "survived",
                verified ? "recovered" : "FAILED");
    if (!verified) ++failures;

    ::unlink(paths.index.c_str());
    ::unlink(paths.wal.c_str());
    ::unlink(paths.acks.c_str());
  }

  // Phase 2: crash *inside recovery*. A clean workload run leaves an index
  // file plus a WAL holding post-checkpoint batches; a child is then killed
  // at each recovery-path failpoint — while the base graph rebuilds, while
  // batches replay into the staged log generation, and at the publishing
  // rename itself. The acknowledged state must survive every one of those
  // windows: a clean second recovery has to match the oracle built from
  // whichever log generation the crash left published.
  const std::vector<Scenario> recovery_scenarios = {
      {"wal.open", 1},     {"wal.append", 1},     {"wal.append", 3},
      {"wal.fsync", 2},    {"wal.finalize", 1},   {"engine.rebuild", 1},
  };
  for (const Scenario& scenario : recovery_scenarios) {
    Paths paths;
    std::string prefix = dir + "/recover." + scenario.site + "." +
                         std::to_string(scenario.countdown);
    paths.index = prefix + ".idx";
    paths.wal = prefix + ".wal";
    paths.acks = prefix + ".acks";
    ::unlink(paths.index.c_str());
    ::unlink(paths.wal.c_str());
    ::unlink(paths.acks.c_str());
    std::string name = std::string("recover/") + scenario.site + "@" +
                       std::to_string(scenario.countdown);

    std::fflush(stdout);
    std::fflush(stderr);
    pid_t workload = ::fork();
    if (workload == 0) {
      ::_exit(RunCrasher(paths, /*site=*/"", /*countdown=*/0));
    }
    int status = 0;
    ::waitpid(workload, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "FAIL [%s]: clean workload run failed (%d)\n",
                   name.c_str(), status);
      ++failures;
      continue;
    }

    // Snapshot the acknowledged history before recovery can touch the log:
    // the verifier's oracle must come from this copy, or a recovery that
    // destroys log records would be graded against its own damage.
    const std::string precrash_wal = paths.wal + ".precrash";
    {
      std::optional<std::string> bytes = ReadFileToString(paths.wal);
      if (!bytes.has_value() ||
          !WriteStringToFile(precrash_wal, bytes.value())) {
        std::fprintf(stderr, "FAIL [%s]: could not snapshot the WAL\n",
                     name.c_str());
        ++failures;
        continue;
      }
    }

    pid_t crasher = ::fork();
    if (crasher == 0) {
      ::_exit(RunRecoveryCrasher(paths, scenario.site, scenario.countdown));
    }
    ::waitpid(crasher, &status, 0);
    bool crashed = WIFEXITED(status) && WEXITSTATUS(status) == 134;
    bool survived = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    if (!crashed && !survived) {
      std::fprintf(stderr, "FAIL [%s]: recoverer exited abnormally (%d)\n",
                   name.c_str(), status);
      ++failures;
      continue;
    }
    if (crashed) ++crashes;

    pid_t verifier = ::fork();
    if (verifier == 0) {
      ::_exit(RunRecoveryCrashVerify(paths, precrash_wal, name));
    }
    ::waitpid(verifier, &status, 0);
    bool verified = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    std::printf("%-28s %s -> %s\n", name.c_str(),
                crashed ? "crashed " : "survived",
                verified ? "recovered" : "FAILED");
    if (!verified) ++failures;

    ::unlink(paths.index.c_str());
    ::unlink(paths.wal.c_str());
    ::unlink(paths.acks.c_str());
    ::unlink(precrash_wal.c_str());
  }

  if (crashes == 0) {
    std::fprintf(stderr,
                 "FAIL: no scenario crashed — the failpoints never fired\n");
    return 1;
  }
  std::printf("crash_torture: %zu scenarios, %d crashes, %d failures\n",
              scenarios.size() + recovery_scenarios.size(), crashes, failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace csc

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : "";
  if (dir.empty()) {
    const char* tmp = std::getenv("TMPDIR");
    dir = (tmp != nullptr ? std::string(tmp) : std::string("/tmp")) +
          "/csc_crash_torture";
  }
  ::mkdir(dir.c_str(), 0755);
  return csc::RunParent(dir);
}
#endif  // _WIN32
