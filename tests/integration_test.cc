// End-to-end pipeline tests: generate -> order -> build all engines ->
// query -> serialize -> reload -> resume dynamic maintenance.
#include <gtest/gtest.h>

#include "baseline/bfs_cycle.h"
#include "csc/compact_index.h"
#include "csc/csc_index.h"
#include "dynamic/decremental.h"
#include "dynamic/incremental.h"
#include "graph/graph_io.h"
#include "hpspc/hpspc_index.h"
#include "tests/test_util.h"
#include "util/env.h"
#include "workload/datasets.h"
#include "workload/query_workload.h"
#include "workload/update_workload.h"

namespace csc {
namespace {

TEST(IntegrationTest, DatasetPipelineAllEnginesAgree) {
  // A miniature version of the full bench pipeline on a scaled-down dataset.
  DatasetSpec spec = FindDataset("G04").value();
  DiGraph g = MaterializeDataset(spec, 0.03);  // ~330 vertices
  VertexOrdering order = DegreeOrdering(g);
  CscIndex csc_index = CscIndex::Build(g, order);
  HpSpcIndex hpspc_index = HpSpcIndex::Build(g, order);
  BfsCycleCounter bfs(g);
  QueryWorkload workload = MakeQueryWorkload(g, 50000, 7);
  ASSERT_GT(workload.TotalQueries(), 0u);
  for (const auto& cluster : workload.queries) {
    for (Vertex v : cluster) {
      CycleCount truth = bfs.CountCycles(v);
      ASSERT_EQ(csc_index.Query(v), truth) << "vertex " << v;
      ASSERT_EQ(hpspc_index.CountCycles(v), truth) << "vertex " << v;
    }
  }
}

TEST(IntegrationTest, IndexSizesComparableBetweenEngines) {
  // Figure 9(b)'s qualitative claim: CSC's index (after the §IV.E couple
  // reduction, which is what a deployment stores) is similar in size to
  // HP-SPC's despite the doubled vertex set. Allow 50% slack either way.
  DiGraph g = MaterializeDataset(FindDataset("G04").value(), 0.05);
  VertexOrdering order = DegreeOrdering(g);
  CscIndex csc_index = CscIndex::Build(g, order);
  HpSpcIndex hpspc_index = HpSpcIndex::Build(g, order);
  uint64_t csc_size = CompactIndex::FromIndex(csc_index).SizeBytes();
  uint64_t hpspc_size = hpspc_index.labeling().SizeBytes();
  EXPECT_LT(csc_size, hpspc_size * 3 / 2);
  EXPECT_GT(csc_size, hpspc_size / 2);
}

TEST(IntegrationTest, SaveGraphBuildReloadServeQueries) {
  std::string graph_path = testing::TempDir() + "/itest.edges";
  std::string index_path = testing::TempDir() + "/itest.cscindex";
  DiGraph g = RandomGraph(120, 2.5, 33);
  ASSERT_TRUE(SaveEdgeListFile(g, graph_path));

  auto loaded = LoadEdgeListFile(graph_path);
  ASSERT_TRUE(loaded.has_value());
  CscIndex index = CscIndex::Build(*loaded, DegreeOrdering(*loaded));
  CompactIndex compact = CompactIndex::FromIndex(index);
  ASSERT_TRUE(WriteStringToFile(index_path, compact.Serialize()));

  auto bytes = ReadFileToString(index_path);
  ASSERT_TRUE(bytes.has_value());
  auto reloaded = CompactIndex::Deserialize(*bytes);
  ASSERT_TRUE(reloaded.has_value());
  BfsCycleCounter bfs(g);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(reloaded->Query(v), bfs.CountCycles(v)) << "vertex " << v;
  }
  std::remove(graph_path.c_str());
  std::remove(index_path.c_str());
}

TEST(IntegrationTest, ReloadedIndexResumesDynamicMaintenance) {
  // Serialize, reload, expand back to a full labeling, and keep updating.
  DiGraph g = RandomGraph(60, 2.0, 44);
  VertexOrdering order = DegreeOrdering(g);
  CscIndex index = CscIndex::Build(g, order);
  CompactIndex compact = CompactIndex::FromIndex(index);
  auto reloaded = CompactIndex::Deserialize(compact.Serialize());
  ASSERT_TRUE(reloaded.has_value());
  HubLabeling expanded = reloaded->ExpandToFull();
  ASSERT_EQ(expanded, index.labeling());

  // Maintenance on the original index object after a compaction round trip
  // (minimality strategy so the later deletions see a minimal index).
  for (const Edge& e : SampleNewEdges(g, 6, 45)) {
    ASSERT_TRUE(
        InsertEdge(index, e.from, e.to, MaintenanceStrategy::kMinimality));
    ASSERT_TRUE(g.AddEdge(e.from, e.to));
  }
  for (const Edge& e : SampleExistingEdges(g, 4, 46)) {
    ASSERT_TRUE(RemoveEdge(index, e.from, e.to));
    ASSERT_TRUE(g.RemoveEdge(e.from, e.to));
  }
  BfsCycleCounter bfs(g);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(index.Query(v), bfs.CountCycles(v)) << "vertex " << v;
  }
}

TEST(IntegrationTest, PaperDynamicWorkloadRemoveThenReinsert) {
  // §VI.A: "[200,500] random edges were removed and then inserted back" —
  // shrunk to 30 edges on a 400-vertex graph; final index must answer
  // exactly like the (unchanged) initial graph.
  DiGraph g = MaterializeDataset(FindDataset("G30").value(), 0.01);
  VertexOrdering order = DegreeOrdering(g);
  CscIndex index = CscIndex::Build(g, order);
  std::vector<CycleCount> before(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) before[v] = index.Query(v);

  std::vector<Edge> edges = SampleExistingEdges(g, 30, 55);
  for (const Edge& e : edges) {
    ASSERT_TRUE(RemoveEdge(index, e.from, e.to));
  }
  for (const Edge& e : edges) {
    ASSERT_TRUE(
        InsertEdge(index, e.from, e.to, MaintenanceStrategy::kMinimality));
  }
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(index.Query(v), before[v]) << "vertex " << v;
  }
  CscIndex fresh = CscIndex::Build(g, order);
  EXPECT_EQ(index.labeling(), fresh.labeling());
}

}  // namespace
}  // namespace csc
