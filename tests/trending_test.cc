#include "csc/trending.h"

#include <gtest/gtest.h>

#include "csc/csc_index.h"
#include "dynamic/incremental.h"
#include "graph/ordering.h"
#include "tests/test_util.h"

namespace csc {
namespace {

ScreeningHit Hit(Vertex v, Dist length, Count count) {
  return {v, {length, count}};
}

TEST(TrendTrackerTest, FirstSnapshotIsAllEntries) {
  TrendTracker tracker(3);
  TrendReport report = tracker.Observe({Hit(1, 2, 5), Hit(2, 3, 4)});
  EXPECT_EQ(report.tick, 0u);
  ASSERT_EQ(report.entered.size(), 2u);
  EXPECT_TRUE(report.exited.empty());
  EXPECT_TRUE(report.shortened.empty());
  EXPECT_TRUE(report.HasAlerts());
  EXPECT_EQ(tracker.ticks_observed(), 1u);
}

TEST(TrendTrackerTest, StableSnapshotHasNoAlerts) {
  TrendTracker tracker(3);
  std::vector<ScreeningHit> hits = {Hit(1, 2, 5), Hit(2, 3, 4)};
  tracker.Observe(hits);
  TrendReport report = tracker.Observe(hits);
  EXPECT_EQ(report.tick, 1u);
  EXPECT_FALSE(report.HasAlerts());
}

TEST(TrendTrackerTest, DetectsEnterExitAndShortening) {
  TrendTracker tracker(3);
  tracker.Observe({Hit(1, 4, 5), Hit(2, 3, 4), Hit(3, 5, 1)});
  // 1 shortens (4 -> 2), 2 stays, 3 exits, 9 enters.
  TrendReport report =
      tracker.Observe({Hit(1, 2, 7), Hit(2, 3, 4), Hit(9, 2, 2)});
  ASSERT_EQ(report.entered.size(), 1u);
  EXPECT_EQ(report.entered[0].vertex, 9u);
  ASSERT_EQ(report.exited.size(), 1u);
  EXPECT_EQ(report.exited[0].vertex, 3u);
  ASSERT_EQ(report.shortened.size(), 1u);
  EXPECT_EQ(report.shortened[0].vertex, 1u);
  EXPECT_EQ(report.shortened[0].cycles.length, 2u);
}

TEST(TrendTrackerTest, CountOnlyChangeIsNotAnAlert) {
  TrendTracker tracker(2);
  tracker.Observe({Hit(1, 3, 5)});
  TrendReport report = tracker.Observe({Hit(1, 3, 50)});
  EXPECT_FALSE(report.HasAlerts());
}

TEST(TrendTrackerTest, LengtheningIsNotShortening) {
  // A cycle getting longer (e.g. after a deletion elsewhere) is an exit
  // signal handled by the caller's threshold, not a `shortened` alert.
  TrendTracker tracker(2);
  tracker.Observe({Hit(1, 3, 5)});
  TrendReport report = tracker.Observe({Hit(1, 6, 5)});
  EXPECT_TRUE(report.shortened.empty());
  EXPECT_TRUE(report.entered.empty());
  EXPECT_TRUE(report.exited.empty());
}

TEST(TrendTrackerTest, EndToEndWithLiveIndex) {
  // Close a long cycle, then shortcut it: the affected vertex must first
  // enter the board, then appear as `shortened`.
  DiGraph graph(6);
  graph.AddEdge(0, 1);
  graph.AddEdge(1, 2);
  graph.AddEdge(2, 3);
  graph.AddEdge(3, 4);
  graph.AddEdge(4, 5);
  CscIndex index = CscIndex::Build(graph, DegreeOrdering(graph));
  TrendTracker tracker(6);

  TrendReport quiet = tracker.Observe(TopKByCycleCount(index, kInfDist, 6));
  EXPECT_FALSE(quiet.HasAlerts());  // DAG: nothing on the board

  InsertEdge(index, 5, 0);  // 6-cycle through everything
  TrendReport closed = tracker.Observe(TopKByCycleCount(index, kInfDist, 6));
  EXPECT_EQ(closed.entered.size(), 6u);
  EXPECT_TRUE(closed.shortened.empty());

  InsertEdge(index, 2, 0);  // 3-cycle 0-1-2 shortcuts part of the board
  TrendReport shortcut =
      tracker.Observe(TopKByCycleCount(index, kInfDist, 6));
  // 0, 1, 2 now have length-3 cycles: reported as shortened, not entered.
  ASSERT_EQ(shortcut.shortened.size(), 3u);
  EXPECT_TRUE(shortcut.entered.empty());
  EXPECT_TRUE(shortcut.exited.empty());
}

TEST(TrendTrackerTest, CurrentReflectsLatestSnapshot) {
  TrendTracker tracker(2);
  EXPECT_TRUE(tracker.current().empty());
  std::vector<ScreeningHit> hits = {Hit(4, 2, 1)};
  tracker.Observe(hits);
  EXPECT_EQ(tracker.current(), hits);
}

}  // namespace
}  // namespace csc
