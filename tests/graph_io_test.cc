#include "graph/graph_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "tests/test_util.h"
#include "util/env.h"

namespace csc {
namespace {

TEST(GraphIoTest, ParsesSnapFormat) {
  auto g = ParseEdgeList(
      "# Directed graph\n"
      "# FromNodeId\tToNodeId\n"
      "0\t1\n"
      "1\t2\n"
      "2\t0\n");
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->num_vertices(), 3u);
  EXPECT_EQ(g->num_edges(), 3u);
  EXPECT_TRUE(g->HasEdge(0, 1));
  EXPECT_TRUE(g->HasEdge(2, 0));
}

TEST(GraphIoTest, RemapsNonContiguousIds) {
  auto g = ParseEdgeList("100 200\n200 7\n");
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->num_vertices(), 3u);
  // 100 -> 0, 200 -> 1, 7 -> 2 in order of first appearance.
  EXPECT_TRUE(g->HasEdge(0, 1));
  EXPECT_TRUE(g->HasEdge(1, 2));
}

TEST(GraphIoTest, ParsesKonectCommentsAndExtraColumns) {
  auto g = ParseEdgeList(
      "% asym unweighted\n"
      "1 2 1 1370000000\n"
      "2 3 1 1370000001\n");
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->num_vertices(), 3u);
  EXPECT_EQ(g->num_edges(), 2u);
}

TEST(GraphIoTest, DropsSelfLoopsAndDuplicates) {
  auto g = ParseEdgeList("0 0\n0 1\n0 1\n");
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->num_edges(), 1u);
}

TEST(GraphIoTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseEdgeList("0 x\n").has_value());
  EXPECT_FALSE(ParseEdgeList("abc def\n").has_value());
  EXPECT_FALSE(ParseEdgeList("1\n").has_value());
}

TEST(GraphIoTest, EmptyInputYieldsEmptyGraph) {
  auto g = ParseEdgeList("# nothing but comments\n\n");
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->num_vertices(), 0u);
  EXPECT_EQ(g->num_edges(), 0u);
}

TEST(GraphIoTest, SaveLoadRoundTripsFigure2) {
  DiGraph g = Figure2Graph();
  std::string path = testing::TempDir() + "/fig2.edges";
  ASSERT_TRUE(SaveEdgeListFile(g, path));
  auto back = LoadEdgeListFile(path);
  ASSERT_TRUE(back.has_value());
  // The emitted "# Nodes:" header makes the round trip id-exact.
  EXPECT_EQ(*back, g);
  std::remove(path.c_str());
}

TEST(GraphIoTest, NodesHeaderPreservesIdsAndIsolatedVertices) {
  auto g = ParseEdgeList("# Nodes: 6 Edges: 2\n5 3\n3 5\n");
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->num_vertices(), 6u);
  EXPECT_TRUE(g->HasEdge(5, 3));
  EXPECT_TRUE(g->HasEdge(3, 5));
  EXPECT_EQ(g->Degree(0), 0u);  // isolated vertex retained
}

TEST(GraphIoTest, NodesHeaderRejectsOutOfRangeIds) {
  EXPECT_FALSE(ParseEdgeList("# Nodes: 3\n0 5\n").has_value());
}

TEST(GraphIoTest, LoadMissingFileFails) {
  EXPECT_FALSE(LoadEdgeListFile("/no/such/file.edges").has_value());
}

TEST(GraphIoTest, HandlesCrLfLineEndings) {
  auto g = ParseEdgeList("0 1\r\n1 2\r\n");
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->num_edges(), 2u);
}

}  // namespace
}  // namespace csc
