#include "labeling/inverted_index.h"

#include <gtest/gtest.h>

#include "csc/csc_index.h"
#include "dynamic/decremental.h"
#include "dynamic/incremental.h"
#include "graph/ordering.h"
#include "tests/test_util.h"

namespace csc {
namespace {

TEST(InvertedIndexTest, AddRemoveContains) {
  InvertedIndex inverted(4);
  inverted.Add(2, 7);
  inverted.Add(2, 9);
  EXPECT_TRUE(inverted.Contains(2, 7));
  EXPECT_FALSE(inverted.Contains(2, 8));
  EXPECT_FALSE(inverted.Contains(3, 7));
  EXPECT_EQ(inverted.TotalEntries(), 2u);
  inverted.Remove(2, 7);
  EXPECT_FALSE(inverted.Contains(2, 7));
  // Out-of-range removals are no-ops, not crashes.
  inverted.Remove(100, 7);
  EXPECT_EQ(inverted.TotalEntries(), 1u);
}

TEST(InvertedIndexTest, AddGrowsRankTableOnDemand) {
  InvertedIndex inverted;
  EXPECT_TRUE(inverted.empty());
  inverted.Add(10, 3);
  EXPECT_GE(inverted.num_ranks(), 11u);
  EXPECT_TRUE(inverted.Contains(10, 3));
  EXPECT_TRUE(inverted.Vertices(5).empty());
  EXPECT_TRUE(inverted.Vertices(999).empty());  // past the table: empty view
}

TEST(InvertedIndexTest, BuildFromMirrorsLabeling) {
  CscIndex::Options options;
  options.maintain_inverted_index = true;
  CscIndex index = CscIndex::Build(Figure2Graph(), Figure2Ordering(), options);
  EXPECT_TRUE(
      index.inv_in().ConsistentWith(index.labeling(), LabelDirection::kIn));
  EXPECT_TRUE(
      index.inv_out().ConsistentWith(index.labeling(), LabelDirection::kOut));
  EXPECT_EQ(index.inv_in().TotalEntries() + index.inv_out().TotalEntries(),
            index.TotalEntries());
}

TEST(InvertedIndexTest, ConsistentWithDetectsDrift) {
  CscIndex::Options options;
  options.maintain_inverted_index = true;
  CscIndex index = CscIndex::Build(Figure2Graph(), Figure2Ordering(), options);
  InvertedIndex copy = index.inv_in();
  ASSERT_TRUE(copy.ConsistentWith(index.labeling(), LabelDirection::kIn));
  // A stale extra pair and a missing pair must both be caught.
  copy.Add(0, 1000);  // vertex id no labeling covers
  EXPECT_FALSE(copy.ConsistentWith(index.labeling(), LabelDirection::kIn));
  copy.Remove(0, 1000);
  Rank some_hub = index.labeling().in[2].entries().front().hub();
  copy.Remove(some_hub, 2);
  EXPECT_FALSE(copy.ConsistentWith(index.labeling(), LabelDirection::kIn));
}

// The satellite requirement: inverted-hub maintenance is exercised when the
// index is built with maintain_inverted_index and updated under the
// minimality strategy — the mirrors must track every label mutation.
TEST(InvertedIndexTest, StaysConsistentThroughMinimalityMaintenance) {
  CscIndex::Options options;
  options.maintain_inverted_index = true;
  DiGraph graph = Figure2Graph();
  CscIndex index = CscIndex::Build(graph, DegreeOrdering(graph), options);

  const std::vector<std::pair<bool, Edge>> scenario = {
      {true, {7, 6}}, {true, {6, 0}}, {false, {7, 6}}, {false, {0, 2}}};
  for (const auto& [insert, edge] : scenario) {
    bool applied =
        insert ? InsertEdge(index, edge.from, edge.to,
                            MaintenanceStrategy::kMinimality)
               : RemoveEdge(index, edge.from, edge.to);
    ASSERT_TRUE(applied);
    EXPECT_TRUE(
        index.inv_in().ConsistentWith(index.labeling(), LabelDirection::kIn))
        << (insert ? "insert" : "remove") << " " << edge.from << "->"
        << edge.to;
    EXPECT_TRUE(
        index.inv_out().ConsistentWith(index.labeling(), LabelDirection::kOut))
        << (insert ? "insert" : "remove") << " " << edge.from << "->"
        << edge.to;
  }
}

}  // namespace
}  // namespace csc
