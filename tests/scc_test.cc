#include "graph/scc.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/bfs_cycle.h"
#include "graph/digraph.h"
#include "tests/test_util.h"

namespace csc {
namespace {

TEST(SccTest, EmptyGraph) {
  SccResult scc = ComputeScc(DiGraph());
  EXPECT_EQ(scc.num_components(), 0u);
}

TEST(SccTest, SingletonsInDag) {
  DiGraph dag(4);
  dag.AddEdge(0, 1);
  dag.AddEdge(1, 2);
  dag.AddEdge(0, 3);
  SccResult scc = ComputeScc(dag);
  EXPECT_EQ(scc.num_components(), 4u);
  for (Vertex v = 0; v < 4; ++v) {
    EXPECT_EQ(scc.component_size[scc.component[v]], 1u);
    EXPECT_FALSE(scc.OnCycle(v));
  }
}

TEST(SccTest, SingleCycleIsOneComponent) {
  DiGraph ring(5);
  for (Vertex v = 0; v < 5; ++v) ring.AddEdge(v, (v + 1) % 5);
  SccResult scc = ComputeScc(ring);
  EXPECT_EQ(scc.num_components(), 1u);
  EXPECT_EQ(scc.component_size[0], 5u);
  for (Vertex v = 0; v < 5; ++v) EXPECT_TRUE(scc.OnCycle(v));
}

TEST(SccTest, TwoCyclesJoinedByBridge) {
  // Cycle {0,1,2}, bridge 2->3, cycle {3,4}.
  DiGraph graph(5);
  graph.AddEdge(0, 1);
  graph.AddEdge(1, 2);
  graph.AddEdge(2, 0);
  graph.AddEdge(2, 3);
  graph.AddEdge(3, 4);
  graph.AddEdge(4, 3);
  SccResult scc = ComputeScc(graph);
  EXPECT_EQ(scc.num_components(), 2u);
  EXPECT_EQ(scc.component[0], scc.component[1]);
  EXPECT_EQ(scc.component[1], scc.component[2]);
  EXPECT_EQ(scc.component[3], scc.component[4]);
  EXPECT_NE(scc.component[0], scc.component[3]);
  // Edge from component of {0,1,2} to component of {3,4}: the source
  // component must carry the larger id (reverse topological numbering).
  EXPECT_GT(scc.component[0], scc.component[3]);
}

TEST(SccTest, IdsAreReverseTopological) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    DiGraph graph = RandomGraph(80, 2.5, seed);
    SccResult scc = ComputeScc(graph);
    for (Vertex v = 0; v < graph.num_vertices(); ++v) {
      for (Vertex w : graph.OutNeighbors(v)) {
        if (scc.component[v] != scc.component[w]) {
          EXPECT_GT(scc.component[v], scc.component[w])
              << "seed " << seed << " edge " << v << "->" << w;
        }
      }
    }
  }
}

TEST(SccTest, DeepPathDoesNotOverflowStack) {
  // 200k-vertex path plus a closing edge: recursion would overflow here.
  const Vertex n = 200000;
  DiGraph path(n);
  for (Vertex v = 0; v + 1 < n; ++v) path.AddEdge(v, v + 1);
  path.AddEdge(n - 1, 0);
  SccResult scc = ComputeScc(path);
  EXPECT_EQ(scc.num_components(), 1u);
  EXPECT_EQ(scc.component_size[0], n);
}

TEST(SccTest, ComponentSizesSumToVertexCount) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    DiGraph graph = RandomGraph(100, 2.0, seed);
    SccResult scc = ComputeScc(graph);
    uint64_t total = 0;
    for (uint32_t size : scc.component_size) total += size;
    EXPECT_EQ(total, graph.num_vertices());
  }
}

TEST(SccTest, OnCycleMatchesBfsCycleOracle) {
  // The library-wide invariant: SCCnt(v) > 0 exactly when v's SCC is
  // non-trivial. This is what makes SCC a sound screening pre-filter.
  for (uint64_t seed = 0; seed < 10; ++seed) {
    DiGraph graph = RandomGraph(70, 2.2, seed + 100);
    SccResult scc = ComputeScc(graph);
    BfsCycleCounter counter(graph);
    for (Vertex v = 0; v < graph.num_vertices(); ++v) {
      EXPECT_EQ(scc.OnCycle(v), counter.CountCycles(v).count > 0)
          << "seed " << seed << " vertex " << v;
    }
  }
}

TEST(CondensationTest, IsADagWithOneVertexPerComponent) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    DiGraph graph = RandomGraph(80, 2.5, seed + 50);
    SccResult scc = ComputeScc(graph);
    DiGraph dag = Condensation(graph, scc);
    EXPECT_EQ(dag.num_vertices(), scc.num_components());
    SccResult dag_scc = ComputeScc(dag);
    // Every condensation component must be a singleton (DAG-ness).
    for (uint32_t size : dag_scc.component_size) EXPECT_EQ(size, 1u);
    // Edges only go from higher ids to lower ids (reverse topological).
    for (Vertex c = 0; c < dag.num_vertices(); ++c) {
      for (Vertex d : dag.OutNeighbors(c)) EXPECT_GT(c, d);
    }
  }
}

TEST(CondensationTest, FigureTwoGraphIsOneComponent) {
  // Figure 2's graph is strongly connected except v2 feeds back into it;
  // verify against the definition by checking every vertex's membership.
  DiGraph graph = Figure2Graph();
  SccResult scc = ComputeScc(graph);
  BfsCycleCounter counter(graph);
  for (Vertex v = 0; v < graph.num_vertices(); ++v) {
    EXPECT_EQ(scc.OnCycle(v), counter.CountCycles(v).count > 0);
  }
}

TEST(VerticesOnCyclesTest, ListsExactlyCycleVertices) {
  // Cycle {0,1} plus dangling path 2->3.
  DiGraph graph(4);
  graph.AddEdge(0, 1);
  graph.AddEdge(1, 0);
  graph.AddEdge(2, 3);
  std::vector<Vertex> on_cycle = VerticesOnCycles(graph);
  EXPECT_EQ(on_cycle, (std::vector<Vertex>{0, 1}));
}

TEST(VerticesOnCyclesTest, SortedAscending) {
  for (uint64_t seed = 0; seed < 4; ++seed) {
    DiGraph graph = RandomGraph(60, 2.0, seed + 7);
    std::vector<Vertex> on_cycle = VerticesOnCycles(graph);
    EXPECT_TRUE(std::is_sorted(on_cycle.begin(), on_cycle.end()));
  }
}

}  // namespace
}  // namespace csc
