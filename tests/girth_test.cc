#include "csc/girth.h"

#include <gtest/gtest.h>

#include "baseline/bfs_cycle.h"
#include "csc/csc_index.h"
#include "csc/frozen_index.h"
#include "graph/digraph.h"
#include "graph/ordering.h"
#include "tests/test_util.h"

namespace csc {
namespace {

CscIndex BuildIndex(const DiGraph& graph) {
  return CscIndex::Build(graph, DegreeOrdering(graph));
}

TEST(GirthTest, AcyclicGraphHasInfiniteGirth) {
  DiGraph dag(4);
  dag.AddEdge(0, 1);
  dag.AddEdge(1, 2);
  dag.AddEdge(2, 3);
  CscIndex index = BuildIndex(dag);
  GirthInfo info = ComputeGirth(index);
  EXPECT_EQ(info.girth, kInfDist);
  EXPECT_EQ(info.num_girth_vertices, 0u);
  EXPECT_EQ(info.example_vertex, kNoVertex);
}

TEST(GirthTest, TriangleGirthIsThree) {
  DiGraph triangle(3);
  triangle.AddEdge(0, 1);
  triangle.AddEdge(1, 2);
  triangle.AddEdge(2, 0);
  CscIndex index = BuildIndex(triangle);
  GirthInfo info = ComputeGirth(index);
  EXPECT_EQ(info.girth, 3u);
  EXPECT_EQ(info.num_girth_vertices, 3u);
  EXPECT_EQ(info.example_vertex, 0u);
}

TEST(GirthTest, ReciprocalEdgeDominatesLongerCycles) {
  // Triangle {0,1,2} plus reciprocal pair {3,4}: girth is 2.
  DiGraph graph(5);
  graph.AddEdge(0, 1);
  graph.AddEdge(1, 2);
  graph.AddEdge(2, 0);
  graph.AddEdge(3, 4);
  graph.AddEdge(4, 3);
  CscIndex index = BuildIndex(graph);
  GirthInfo info = ComputeGirth(index);
  EXPECT_EQ(info.girth, 2u);
  EXPECT_EQ(info.num_girth_vertices, 2u);
  EXPECT_EQ(info.example_vertex, 3u);
}

TEST(GirthTest, Figure2GirthMatchesOracleSweep) {
  DiGraph graph = Figure2Graph();
  CscIndex index = BuildIndex(graph);
  GirthInfo info = ComputeGirth(index);

  BfsCycleCounter counter(graph);
  Dist oracle_girth = kInfDist;
  for (Vertex v = 0; v < graph.num_vertices(); ++v) {
    CycleCount c = counter.CountCycles(v);
    if (c.count > 0 && c.length < oracle_girth) oracle_girth = c.length;
  }
  EXPECT_EQ(info.girth, oracle_girth);
}

TEST(GirthTest, FrozenIndexGivesSameGirth) {
  for (uint64_t seed = 0; seed < 4; ++seed) {
    DiGraph graph = RandomGraph(60, 2.5, seed + 3);
    CscIndex index = BuildIndex(graph);
    FrozenIndex frozen = FrozenIndex::FromIndex(index);
    GirthInfo a = ComputeGirth(index);
    GirthInfo b = ComputeGirth(frozen);
    EXPECT_EQ(a.girth, b.girth);
    EXPECT_EQ(a.num_girth_vertices, b.num_girth_vertices);
    EXPECT_EQ(a.example_vertex, b.example_vertex);
  }
}

TEST(HistogramTest, CountsPartitionVertices) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    DiGraph graph = RandomGraph(70, 2.0, seed + 9);
    CscIndex index = BuildIndex(graph);
    CycleLengthHistogram histogram = ComputeCycleLengthHistogram(index);
    EXPECT_EQ(histogram.cyclic_vertices() + histogram.acyclic_vertices,
              graph.num_vertices());
  }
}

TEST(HistogramTest, MatchesPerVertexOracle) {
  DiGraph graph = RandomGraph(60, 3.0, 17);
  CscIndex index = BuildIndex(graph);
  CycleLengthHistogram histogram = ComputeCycleLengthHistogram(index);

  BfsCycleCounter counter(graph);
  std::vector<uint64_t> expected;
  uint64_t acyclic = 0;
  for (Vertex v = 0; v < graph.num_vertices(); ++v) {
    CycleCount c = counter.CountCycles(v);
    if (c.count == 0) {
      ++acyclic;
      continue;
    }
    if (expected.size() <= c.length) expected.resize(c.length + 1, 0);
    ++expected[c.length];
  }
  EXPECT_EQ(histogram.vertices_by_length, expected);
  EXPECT_EQ(histogram.acyclic_vertices, acyclic);
}

TEST(HistogramTest, NoLengthZeroOrOneOnSimpleGraphs) {
  DiGraph graph = RandomGraph(80, 3.0, 23);
  CscIndex index = BuildIndex(graph);
  CycleLengthHistogram histogram = ComputeCycleLengthHistogram(index);
  if (histogram.vertices_by_length.size() > 0) {
    EXPECT_EQ(histogram.vertices_by_length[0], 0u);
  }
  if (histogram.vertices_by_length.size() > 1) {
    EXPECT_EQ(histogram.vertices_by_length[1], 0u);
  }
}

TEST(HistogramTest, EmptyGraphHistogram) {
  CscIndex index = BuildIndex(DiGraph());
  CycleLengthHistogram histogram = ComputeCycleLengthHistogram(index);
  EXPECT_TRUE(histogram.vertices_by_length.empty());
  EXPECT_EQ(histogram.acyclic_vertices, 0u);
  EXPECT_EQ(histogram.cyclic_vertices(), 0u);
}

TEST(GirthTest, GirthIsMinOfHistogramSupport) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    DiGraph graph = RandomGraph(50, 2.5, seed + 31);
    CscIndex index = BuildIndex(graph);
    GirthInfo info = ComputeGirth(index);
    CycleLengthHistogram histogram = ComputeCycleLengthHistogram(index);
    Dist min_support = kInfDist;
    for (size_t len = 0; len < histogram.vertices_by_length.size(); ++len) {
      if (histogram.vertices_by_length[len] > 0) {
        min_support = static_cast<Dist>(len);
        break;
      }
    }
    EXPECT_EQ(info.girth, min_support) << "seed " << seed;
    if (info.girth != kInfDist) {
      EXPECT_EQ(info.num_girth_vertices,
                histogram.vertices_by_length[info.girth]);
    }
  }
}

}  // namespace
}  // namespace csc
