#include "graph/stats.h"

#include <numeric>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "tests/test_util.h"

namespace csc {
namespace {

TEST(GraphStatsTest, EmptyGraph) {
  GraphStats stats = ComputeGraphStats(DiGraph());
  EXPECT_EQ(stats.num_vertices, 0u);
  EXPECT_EQ(stats.num_edges, 0u);
  EXPECT_EQ(stats.mean_degree, 0.0);
  EXPECT_EQ(stats.reciprocity, 0.0);
}

TEST(GraphStatsTest, HandComputedSmallGraph) {
  // 0 <-> 1 (reciprocal), 0 -> 2, 3 isolated.
  DiGraph graph(4);
  graph.AddEdge(0, 1);
  graph.AddEdge(1, 0);
  graph.AddEdge(0, 2);
  GraphStats stats = ComputeGraphStats(graph);
  EXPECT_EQ(stats.num_vertices, 4u);
  EXPECT_EQ(stats.num_edges, 3u);
  EXPECT_EQ(stats.max_out_degree, 2u);  // vertex 0
  EXPECT_EQ(stats.max_in_degree, 1u);
  EXPECT_EQ(stats.max_degree, 3u);  // vertex 0: out 2 + in 1
  EXPECT_EQ(stats.isolated_vertices, 1u);
  EXPECT_EQ(stats.reciprocal_edges, 2u);  // both directions of 0<->1
  EXPECT_DOUBLE_EQ(stats.reciprocity, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(stats.mean_degree, 2.0 * 3 / 4);
}

TEST(GraphStatsTest, DegreeHistogramPartitionsVertices) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    DiGraph graph = RandomGraph(120, 2.5, seed);
    GraphStats stats = ComputeGraphStats(graph);
    uint64_t total = std::accumulate(stats.degree_histogram.begin(),
                                     stats.degree_histogram.end(),
                                     uint64_t{0});
    EXPECT_EQ(total, graph.num_vertices());
  }
}

TEST(GraphStatsTest, CompleteDigraphIsFullyReciprocal) {
  DiGraph complete = GenerateCompleteDigraph(6);
  GraphStats stats = ComputeGraphStats(complete);
  EXPECT_EQ(stats.num_edges, 30u);
  EXPECT_DOUBLE_EQ(stats.reciprocity, 1.0);
  EXPECT_EQ(stats.max_degree, 10u);  // 5 out + 5 in
  EXPECT_EQ(stats.isolated_vertices, 0u);
}

TEST(GraphStatsTest, PureDagHasZeroReciprocity) {
  DiGraph dag(5);
  for (Vertex u = 0; u < 5; ++u) {
    for (Vertex v = u + 1; v < 5; ++v) dag.AddEdge(u, v);
  }
  GraphStats stats = ComputeGraphStats(dag);
  EXPECT_EQ(stats.reciprocal_edges, 0u);
  EXPECT_EQ(stats.reciprocity, 0.0);
}

TEST(AverageDistanceTest, PathGraphExactFromSingleSource) {
  // 0 -> 1 -> 2 -> 3; from source 0 distances are 1, 2, 3 -> mean 2.
  DiGraph path(4);
  path.AddEdge(0, 1);
  path.AddEdge(1, 2);
  path.AddEdge(2, 3);
  // Enough samples that source 0 is drawn; every source's mean over
  // reachable targets is (k+1)/2, so the estimate stays in [1, 2].
  double estimate = EstimateAverageDistance(path, 32, 5);
  EXPECT_GE(estimate, 1.0);
  EXPECT_LE(estimate, 2.0);
}

TEST(AverageDistanceTest, EdgelessGraphIsZero) {
  EXPECT_EQ(EstimateAverageDistance(DiGraph(10), 4, 1), 0.0);
}

TEST(AverageDistanceTest, DeterministicInSeed) {
  DiGraph graph = RandomGraph(80, 3.0, 2);
  EXPECT_EQ(EstimateAverageDistance(graph, 8, 9),
            EstimateAverageDistance(graph, 8, 9));
}

TEST(AverageDistanceTest, SmallWorldIsSmall) {
  DiGraph graph = GenerateSmallWorld(500, 4, 0.2, 3);
  double estimate = EstimateAverageDistance(graph, 16, 4);
  EXPECT_GT(estimate, 1.0);
  EXPECT_LT(estimate, 20.0);  // small-world: far below n / k
}

}  // namespace
}  // namespace csc
