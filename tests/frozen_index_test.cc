#include "csc/frozen_index.h"

#include <gtest/gtest.h>

#include "baseline/bfs_cycle.h"
#include "tests/test_util.h"

namespace csc {
namespace {

TEST(FrozenIndexTest, QueriesMatchLiveIndex) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    DiGraph g = RandomGraph(80, 2.5, seed);
    CscIndex live = CscIndex::Build(g, DegreeOrdering(g));
    FrozenIndex frozen = FrozenIndex::FromIndex(live);
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(frozen.Query(v), live.Query(v))
          << "seed " << seed << " vertex " << v;
    }
  }
}

TEST(FrozenIndexTest, MatchesBfsGroundTruth) {
  DiGraph g = RandomGraph(60, 3.0, 42);
  FrozenIndex frozen =
      FrozenIndex::FromIndex(CscIndex::Build(g, DegreeOrdering(g)));
  BfsCycleCounter bfs(g);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(frozen.Query(v), bfs.CountCycles(v)) << "vertex " << v;
  }
}

TEST(FrozenIndexTest, SizeMatchesCompact) {
  DiGraph g = RandomGraph(50, 2.0, 7);
  CscIndex live = CscIndex::Build(g, DegreeOrdering(g));
  CompactIndex compact = CompactIndex::FromIndex(live);
  FrozenIndex frozen = FrozenIndex::FromCompact(compact);
  EXPECT_EQ(frozen.TotalEntries(), compact.TotalEntries());
  EXPECT_EQ(frozen.SizeBytes(), compact.SizeBytes());
  EXPECT_EQ(frozen.num_original_vertices(), compact.num_original_vertices());
}

TEST(FrozenIndexTest, OutOfRangeAndEmpty) {
  FrozenIndex empty;
  EXPECT_EQ(empty.num_original_vertices(), 0u);
  EXPECT_EQ(empty.Query(0), (CycleCount{kInfDist, 0}));

  DiGraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  FrozenIndex frozen =
      FrozenIndex::FromIndex(CscIndex::Build(g, DegreeOrdering(g)));
  EXPECT_EQ(frozen.Query(99), (CycleCount{kInfDist, 0}));
  EXPECT_EQ(frozen.Query(0), (CycleCount{2, 1}));
}

TEST(FrozenIndexTest, SurvivesSerializationRoundTrip) {
  DiGraph g = RandomGraph(40, 2.5, 13);
  CscIndex live = CscIndex::Build(g, DegreeOrdering(g));
  auto reloaded =
      CompactIndex::Deserialize(CompactIndex::FromIndex(live).Serialize());
  ASSERT_TRUE(reloaded.has_value());
  FrozenIndex frozen = FrozenIndex::FromCompact(*reloaded);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(frozen.Query(v), live.Query(v));
  }
}

}  // namespace
}  // namespace csc
