#include "graph/csr.h"

#include <vector>

#include <gtest/gtest.h>

#include "baseline/bfs_cycle.h"
#include "graph/digraph.h"
#include "graph/generators.h"
#include "tests/test_util.h"

namespace csc {
namespace {

TEST(CsrTest, EmptyGraph) {
  CsrGraph csr = CsrGraph::FromGraph(DiGraph());
  EXPECT_EQ(csr.num_vertices(), 0u);
  EXPECT_EQ(csr.num_edges(), 0u);
}

TEST(CsrTest, MirrorsAdjacencyOfSourceGraph) {
  DiGraph graph = Figure2Graph();
  CsrGraph csr = CsrGraph::FromGraph(graph);
  ASSERT_EQ(csr.num_vertices(), graph.num_vertices());
  ASSERT_EQ(csr.num_edges(), graph.num_edges());
  for (Vertex v = 0; v < graph.num_vertices(); ++v) {
    std::span<const Vertex> out = csr.OutNeighbors(v);
    ASSERT_EQ(out.size(), graph.OutNeighbors(v).size());
    for (size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], graph.OutNeighbors(v)[i]);
    }
    std::span<const Vertex> in = csr.InNeighbors(v);
    ASSERT_EQ(in.size(), graph.InNeighbors(v).size());
    for (size_t i = 0; i < in.size(); ++i) {
      EXPECT_EQ(in[i], graph.InNeighbors(v)[i]);
    }
    EXPECT_EQ(csr.OutDegree(v), graph.OutDegree(v));
    EXPECT_EQ(csr.InDegree(v), graph.InDegree(v));
    EXPECT_EQ(csr.Degree(v), graph.Degree(v));
  }
}

TEST(CsrTest, IsolatedVerticesHaveEmptySpans) {
  DiGraph graph(5);
  graph.AddEdge(0, 1);
  CsrGraph csr = CsrGraph::FromGraph(graph);
  EXPECT_TRUE(csr.OutNeighbors(2).empty());
  EXPECT_TRUE(csr.InNeighbors(4).empty());
  EXPECT_EQ(csr.OutNeighbors(0).size(), 1u);
}

TEST(CsrTest, SizeBytesAccountsAllArrays) {
  DiGraph graph = Figure2Graph();
  CsrGraph csr = CsrGraph::FromGraph(graph);
  // 2 offset arrays of (n+1) u64 + 2 target arrays of m u32.
  uint64_t expected = 2 * (graph.num_vertices() + 1) * sizeof(uint64_t) +
                      2 * graph.num_edges() * sizeof(Vertex);
  EXPECT_EQ(csr.SizeBytes(), expected);
}

TEST(CsrBfsTest, ForwardDistancesMatchHandComputed) {
  // 0 -> 1 -> 2, 0 -> 2, 3 isolated.
  DiGraph graph(4);
  graph.AddEdge(0, 1);
  graph.AddEdge(1, 2);
  graph.AddEdge(0, 2);
  CsrGraph csr = CsrGraph::FromGraph(graph);
  std::vector<Dist> dist = CsrBfsDistances(csr, 0, /*forward=*/true);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], 1u);
  EXPECT_EQ(dist[3], kInfDist);
}

TEST(CsrBfsTest, BackwardDistancesFollowInEdges) {
  DiGraph graph(3);
  graph.AddEdge(0, 1);
  graph.AddEdge(1, 2);
  CsrGraph csr = CsrGraph::FromGraph(graph);
  std::vector<Dist> dist = CsrBfsDistances(csr, 2, /*forward=*/false);
  EXPECT_EQ(dist[2], 0u);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[0], 2u);
}

TEST(CsrCycleTest, MatchesPaperExampleOnFigure2) {
  CsrGraph csr = CsrGraph::FromGraph(Figure2Graph());
  // Example 1: SCCnt(v7) = 3 with length 6 (v7 is id 6).
  CycleCount result = CsrBfsCycleCount(csr, 6);
  EXPECT_EQ(result.length, 6u);
  EXPECT_EQ(result.count, 3u);
}

TEST(CsrCycleTest, NoCycleReturnsInfinity) {
  DiGraph dag(3);
  dag.AddEdge(0, 1);
  dag.AddEdge(1, 2);
  CsrGraph csr = CsrGraph::FromGraph(dag);
  for (Vertex v = 0; v < 3; ++v) {
    CycleCount result = CsrBfsCycleCount(csr, v);
    EXPECT_EQ(result.length, kInfDist);
    EXPECT_EQ(result.count, 0u);
  }
}

TEST(CsrCycleTest, ScratchIsRestoredBetweenQueries) {
  DiGraph graph = Figure2Graph();
  CsrGraph csr = CsrGraph::FromGraph(graph);
  std::vector<Dist> dist(csr.num_vertices(), kInfDist);
  std::vector<Count> count(csr.num_vertices(), 0);
  // Interleave queries; each must match the fresh-scratch overload.
  for (Vertex v = 0; v < csr.num_vertices(); ++v) {
    CycleCount with_scratch = CsrBfsCycleCount(csr, v, dist, count);
    CycleCount fresh = CsrBfsCycleCount(csr, v);
    EXPECT_EQ(with_scratch, fresh) << "vertex " << v;
  }
  // Scratch must be back to the neutral state.
  for (Vertex v = 0; v < csr.num_vertices(); ++v) {
    EXPECT_EQ(dist[v], kInfDist);
    EXPECT_EQ(count[v], 0u);
  }
}

TEST(CsrCycleTest, AgreesWithDiGraphBaselineOnRandomGraphs) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    DiGraph graph = RandomGraph(60, 3.0, seed);
    CsrGraph csr = CsrGraph::FromGraph(graph);
    BfsCycleCounter counter(graph);
    std::vector<Dist> dist(csr.num_vertices(), kInfDist);
    std::vector<Count> count(csr.num_vertices(), 0);
    for (Vertex v = 0; v < graph.num_vertices(); ++v) {
      EXPECT_EQ(CsrBfsCycleCount(csr, v, dist, count),
                counter.CountCycles(v))
          << "seed " << seed << " vertex " << v;
    }
  }
}

}  // namespace
}  // namespace csc
