// Tests for the screening helper and the reserve_vertices build option.
#include "csc/screening.h"

#include <gtest/gtest.h>

#include <set>

#include "baseline/bfs_cycle.h"
#include "dynamic/incremental.h"
#include "graph/generators.h"
#include "graph/ordering.h"
#include "tests/test_util.h"

namespace csc {
namespace {

TEST(ScreeningTest, RecoversPlantedRingCenters) {
  MoneyLaunderingConfig cfg;
  cfg.num_background = 800;
  cfg.num_rings = 4;
  cfg.routes_per_ring = 6;
  cfg.route_length = 3;
  MoneyLaunderingGraph ml = GenerateMoneyLaundering(cfg, 99);
  CscIndex index = CscIndex::Build(ml.graph, DegreeOrdering(ml.graph));
  auto hits = TopKByCycleCount(index, cfg.route_length + 1, cfg.num_rings);
  ASSERT_EQ(hits.size(), cfg.num_rings);
  std::set<Vertex> planted(ml.criminal_accounts.begin(),
                           ml.criminal_accounts.end());
  for (const ScreeningHit& hit : hits) {
    EXPECT_TRUE(planted.count(hit.vertex)) << "vertex " << hit.vertex;
    EXPECT_EQ(hit.cycles.count, cfg.routes_per_ring);
  }
}

TEST(ScreeningTest, OrderingIsCountThenLengthThenId) {
  // 0<->1 (one 2-cycle each); 2/3/4 on two 3-cycles each.
  DiGraph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  g.AddEdge(2, 3);
  g.AddEdge(3, 4);
  g.AddEdge(4, 2);
  g.AddEdge(2, 4);
  g.AddEdge(4, 3);
  g.AddEdge(3, 2);
  CscIndex index = CscIndex::Build(g, DegreeOrdering(g));
  auto hits = TopKByCycleCount(index, kInfDist, 10);
  ASSERT_EQ(hits.size(), 5u);
  // Vertices 2,3,4 have (2-cycles!) via reciprocal pairs: 2<->3? no...
  // 2->3,3->2 yes: so 2,3 and 3,4? Let BFS decide and just assert the sort
  // invariant instead of hand-computed values.
  for (size_t i = 1; i < hits.size(); ++i) {
    const auto& prev = hits[i - 1].cycles;
    const auto& cur = hits[i].cycles;
    bool ordered = prev.count > cur.count ||
                   (prev.count == cur.count && prev.length < cur.length) ||
                   (prev.count == cur.count && prev.length == cur.length &&
                    hits[i - 1].vertex < hits[i].vertex);
    EXPECT_TRUE(ordered) << "position " << i;
  }
  for (const ScreeningHit& hit : hits) {
    EXPECT_EQ(hit.cycles, BfsCountCycles(g, hit.vertex));
  }
}

TEST(ScreeningTest, LengthFilterAndTopKRespected) {
  DiGraph g = RandomGraph(60, 3.0, 5);
  CscIndex index = CscIndex::Build(g, DegreeOrdering(g));
  auto hits = TopKByCycleCount(index, 3, 5);
  EXPECT_LE(hits.size(), 5u);
  for (const ScreeningHit& hit : hits) {
    EXPECT_LE(hit.cycles.length, 3u);
    EXPECT_GT(hit.cycles.count, 0u);
  }
}

TEST(ReserveVerticesTest, NewVerticesAttachViaInsertEdge) {
  DiGraph g = Figure2Graph();
  CscIndex::Options options;
  options.reserve_vertices = 3;
  CscIndex index = CscIndex::Build(g, Figure2Ordering(), options);
  EXPECT_EQ(index.num_original_vertices(), 13u);
  // Reserved slots start isolated.
  EXPECT_EQ(index.Query(10), (CycleCount{kInfDist, 0}));

  // Wire reserved vertex 10 into a triangle with 11 and the existing v1.
  ASSERT_TRUE(InsertEdge(index, 0, 10));
  ASSERT_TRUE(InsertEdge(index, 10, 11));
  ASSERT_TRUE(InsertEdge(index, 11, 0));
  EXPECT_EQ(index.Query(10), (CycleCount{3, 1}));
  EXPECT_EQ(index.Query(11), (CycleCount{3, 1}));

  // Ground truth on the equivalent static graph.
  DiGraph g2 = Figure2Graph();
  g2.AddVertices(3);
  g2.AddEdge(0, 10);
  g2.AddEdge(10, 11);
  g2.AddEdge(11, 0);
  for (Vertex v = 0; v < g2.num_vertices(); ++v) {
    EXPECT_EQ(index.Query(v), BfsCountCycles(g2, v)) << "vertex " << v;
  }
}

TEST(ReserveVerticesTest, ReservedBuildMatchesExtendedStaticBuild) {
  DiGraph g = RandomGraph(30, 2.0, 11);
  CscIndex::Options options;
  options.reserve_vertices = 5;
  CscIndex reserved = CscIndex::Build(g, DegreeOrdering(g), options);
  // Building on the explicitly extended graph must produce the same labels.
  DiGraph extended = g;
  extended.AddVertices(5);
  VertexOrdering order = DegreeOrdering(g);
  for (Vertex v = 30; v < 35; ++v) {
    order.rank_to_vertex.push_back(v);
    order.vertex_to_rank.push_back(v);
  }
  CscIndex direct = CscIndex::Build(extended, order);
  EXPECT_EQ(reserved.labeling(), direct.labeling());
}

}  // namespace
}  // namespace csc
