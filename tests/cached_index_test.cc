#include "csc/cached_index.h"

#include <gtest/gtest.h>

#include "baseline/bfs_cycle.h"
#include "graph/ordering.h"
#include "tests/test_util.h"
#include "workload/update_workload.h"

namespace csc {
namespace {

CachedCscIndex BuildCached(const DiGraph& graph) {
  return CachedCscIndex(CscIndex::Build(graph, DegreeOrdering(graph)));
}

TEST(CachedIndexTest, FirstQueryMissesThenHits) {
  CachedCscIndex cached = BuildCached(Figure2Graph());
  EXPECT_EQ(cached.cache_misses(), 0u);
  CycleCount first = cached.Query(6);
  EXPECT_EQ(first, (CycleCount{6, 3}));  // Example 1
  EXPECT_EQ(cached.cache_misses(), 1u);
  EXPECT_EQ(cached.cache_hits(), 0u);
  CycleCount second = cached.Query(6);
  EXPECT_EQ(second, first);
  EXPECT_EQ(cached.cache_hits(), 1u);
  EXPECT_EQ(cached.NumValidEntries(), 1u);
}

TEST(CachedIndexTest, InsertInvalidatesAllEntries) {
  DiGraph graph(3);
  graph.AddEdge(0, 1);
  graph.AddEdge(1, 2);
  CachedCscIndex cached = BuildCached(graph);
  EXPECT_EQ(cached.Query(0).count, 0u);
  EXPECT_EQ(cached.NumValidEntries(), 1u);

  ASSERT_TRUE(cached.InsertEdge(2, 0));  // closes the triangle
  EXPECT_EQ(cached.NumValidEntries(), 0u);
  // Fresh (correct) answer after the update, counted as a miss.
  EXPECT_EQ(cached.Query(0), (CycleCount{3, 1}));
  EXPECT_EQ(cached.cache_misses(), 2u);
}

TEST(CachedIndexTest, RemoveInvalidatesAllEntries) {
  DiGraph triangle(3);
  triangle.AddEdge(0, 1);
  triangle.AddEdge(1, 2);
  triangle.AddEdge(2, 0);
  CachedCscIndex cached = BuildCached(triangle);
  EXPECT_EQ(cached.Query(1), (CycleCount{3, 1}));
  ASSERT_TRUE(cached.RemoveEdge(2, 0));
  EXPECT_EQ(cached.NumValidEntries(), 0u);
  EXPECT_EQ(cached.Query(1).count, 0u);
}

TEST(CachedIndexTest, RejectedUpdateKeepsCacheValid) {
  DiGraph graph = Figure2Graph();
  CachedCscIndex cached = BuildCached(graph);
  cached.Query(6);
  // Already-present edge and self-loop: no maintenance, no invalidation.
  EXPECT_FALSE(cached.InsertEdge(0, 2));
  EXPECT_FALSE(cached.InsertEdge(3, 3));
  EXPECT_FALSE(cached.RemoveEdge(5, 0));  // absent edge
  EXPECT_EQ(cached.NumValidEntries(), 1u);
  cached.Query(6);
  EXPECT_EQ(cached.cache_hits(), 1u);
}

TEST(CachedIndexTest, AnswersStayCorrectAcrossUpdateSequence) {
  DiGraph graph = RandomGraph(50, 2.5, 77);
  CachedCscIndex cached = BuildCached(graph);

  std::vector<Edge> removals = SampleExistingEdges(graph, 10, 1);
  // Interleave removals/insertions with full query sweeps; every cached
  // answer must match the BFS oracle on the current graph.
  DiGraph live = graph;
  auto verify_all = [&]() {
    BfsCycleCounter oracle(live);
    for (Vertex v = 0; v < live.num_vertices(); ++v) {
      ASSERT_EQ(cached.Query(v), oracle.CountCycles(v)) << "vertex " << v;
      // Second read must hit the cache and agree.
      ASSERT_EQ(cached.Query(v), oracle.CountCycles(v));
    }
  };
  verify_all();
  for (const Edge& e : removals) {
    ASSERT_TRUE(cached.RemoveEdge(e.from, e.to));
    live.RemoveEdge(e.from, e.to);
    verify_all();
  }
  for (const Edge& e : removals) {
    ASSERT_TRUE(cached.InsertEdge(e.from, e.to));
    live.AddEdge(e.from, e.to);
    verify_all();
  }
}

}  // namespace
}  // namespace csc
