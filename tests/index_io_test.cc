#include "csc/index_io.h"

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "csc/csc_index.h"
#include "graph/ordering.h"
#include "tests/test_util.h"
#include "util/env.h"

namespace csc {
namespace {

// A unique temp path per test; removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& tag)
      : path_(::testing::TempDir() + "csc_index_io_" + tag + ".idx") {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

CompactIndex BuildCompact(uint64_t seed) {
  DiGraph graph = RandomGraph(50, 2.5, seed);
  CscIndex index = CscIndex::Build(graph, DegreeOrdering(graph));
  return CompactIndex::FromIndex(index);
}

TEST(IndexIoTest, RoundTripPreservesIndex) {
  TempFile file("roundtrip");
  CompactIndex original = BuildCompact(1);
  ASSERT_TRUE(SaveIndexToFile(original, file.path()));
  IndexLoadResult loaded = LoadIndexFromFile(file.path());
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  EXPECT_EQ(*loaded.index, original);
}

TEST(IndexIoTest, RoundTripServesIdenticalQueries) {
  TempFile file("queries");
  DiGraph graph = RandomGraph(60, 3.0, 7);
  CscIndex index = CscIndex::Build(graph, DegreeOrdering(graph));
  CompactIndex compact = CompactIndex::FromIndex(index);
  ASSERT_TRUE(SaveIndexToFile(compact, file.path()));
  IndexLoadResult loaded = LoadIndexFromFile(file.path());
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  for (Vertex v = 0; v < graph.num_vertices(); ++v) {
    EXPECT_EQ(loaded.index->Query(v), index.Query(v)) << "vertex " << v;
  }
}

TEST(IndexIoTest, MissingFileReportsIoError) {
  IndexLoadResult result = LoadIndexFromFile("/nonexistent/path/index.idx");
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error.find("cannot read"), std::string::npos);
}

TEST(IndexIoTest, EmptyFileRejected) {
  TempFile file("empty");
  ASSERT_TRUE(WriteStringToFile(file.path(), ""));
  IndexLoadResult result = LoadIndexFromFile(file.path());
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error.find("too small"), std::string::npos);
}

TEST(IndexIoTest, ForeignFileRejectedByMagic) {
  TempFile file("foreign");
  ASSERT_TRUE(WriteStringToFile(file.path(),
                                std::string(64, 'A')));  // no magic
  IndexLoadResult result = LoadIndexFromFile(file.path());
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error.find("bad magic"), std::string::npos);
}

TEST(IndexIoTest, TruncationDetected) {
  TempFile file("truncated");
  ASSERT_TRUE(SaveIndexToFile(BuildCompact(2), file.path()));
  std::optional<std::string> bytes = ReadFileToString(file.path());
  ASSERT_TRUE(bytes.has_value());
  // Cut the file short (drop the last 8 bytes).
  ASSERT_GT(bytes->size(), 8u);
  ASSERT_TRUE(
      WriteStringToFile(file.path(), bytes->substr(0, bytes->size() - 8)));
  IndexLoadResult result = LoadIndexFromFile(file.path());
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error.find("truncated"), std::string::npos);
}

TEST(IndexIoTest, EveryPayloadBitFlipIsCaught) {
  // Failure injection: flip one bit at a stride of payload positions; each
  // corruption must be rejected by the checksum (never parsed as valid).
  TempFile file("bitflip");
  ASSERT_TRUE(SaveIndexToFile(BuildCompact(3), file.path()));
  std::optional<std::string> pristine = ReadFileToString(file.path());
  ASSERT_TRUE(pristine.has_value());
  const size_t header = 16;  // magic + size
  const size_t footer = 4;   // crc
  ASSERT_GT(pristine->size(), header + footer);
  for (size_t pos = header; pos + footer < pristine->size(); pos += 97) {
    std::string corrupted = *pristine;
    corrupted[pos] ^= 0x10;
    ASSERT_TRUE(WriteStringToFile(file.path(), corrupted));
    IndexLoadResult result = LoadIndexFromFile(file.path());
    EXPECT_FALSE(result.ok()) << "undetected bit flip at byte " << pos;
    EXPECT_NE(result.error.find("checksum"), std::string::npos);
  }
}

TEST(IndexIoTest, CorruptedCrcFieldDetected) {
  TempFile file("crc");
  ASSERT_TRUE(SaveIndexToFile(BuildCompact(4), file.path()));
  std::optional<std::string> bytes = ReadFileToString(file.path());
  ASSERT_TRUE(bytes.has_value());
  bytes->back() ^= 0xff;  // damage the stored checksum itself
  ASSERT_TRUE(WriteStringToFile(file.path(), *bytes));
  IndexLoadResult result = LoadIndexFromFile(file.path());
  EXPECT_FALSE(result.ok());
}

TEST(IndexIoTest, EmptyGraphIndexRoundTrips) {
  TempFile file("emptygraph");
  CscIndex index = CscIndex::Build(DiGraph(), DegreeOrdering(DiGraph()));
  CompactIndex compact = CompactIndex::FromIndex(index);
  ASSERT_TRUE(SaveIndexToFile(compact, file.path()));
  IndexLoadResult loaded = LoadIndexFromFile(file.path());
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  EXPECT_EQ(loaded.index->num_original_vertices(), 0u);
}

TEST(ShardedBundleTest, PartitionFlagsRoundTrip) {
  const std::vector<std::string> shards = {"alpha", "beta-payload"};
  for (bool sliced : {false, true}) {
    for (bool custom_fn : {false, true}) {
      ShardedBundleInfo info;
      info.sliced = sliced;
      info.custom_shard_fn = custom_fn;
      std::string bundle = WrapShardedPayload(shards, 123, info);
      ASSERT_TRUE(IsShardedPayload(bundle));
      std::string error;
      std::optional<ShardedPayload> parsed =
          ParseShardedPayload(bundle, &error);
      ASSERT_TRUE(parsed) << error;
      EXPECT_EQ(parsed->num_vertices, 123u);
      EXPECT_EQ(parsed->shards, shards);
      EXPECT_EQ(parsed->info.sliced, sliced);
      EXPECT_EQ(parsed->info.custom_shard_fn, custom_fn);
    }
  }
}

TEST(ShardedBundleTest, Revision1BundleStillParses) {
  // Hand-build the pre-flags revision ("CSCSHRD1": no flags word) from a
  // current bundle by rewriting the header — old files on disk must keep
  // loading, with all-clear partition flags.
  const std::vector<std::string> shards = {"one", "two", "three"};
  ShardedBundleInfo info;
  info.sliced = true;  // the flags word being dropped is the point
  std::string v2 = WrapShardedPayload(shards, 77, info);
  constexpr size_t kMagic = 8;
  std::string v1 = "CSCSHRD1";
  v1.append(v2, kMagic, 2 * sizeof(uint32_t));   // shard count + vertices
  v1.append(v2, kMagic + 3 * sizeof(uint32_t),   // frames, skipping flags
            std::string::npos);
  ASSERT_TRUE(IsShardedPayload(v1));
  std::string error;
  std::optional<ShardedPayload> parsed = ParseShardedPayload(v1, &error);
  ASSERT_TRUE(parsed) << error;
  EXPECT_EQ(parsed->num_vertices, 77u);
  EXPECT_EQ(parsed->shards, shards);
  EXPECT_FALSE(parsed->info.sliced);
  EXPECT_FALSE(parsed->info.custom_shard_fn);
}

}  // namespace
}  // namespace csc
