// The annotated synchronization wrappers (util/mutex.h) and the annotation
// macros themselves (util/thread_annotations.h). Two concerns:
//
//  1. The wrappers behave like the std primitives they wrap — scoped
//     acquisition, reader/writer exclusion, condition-variable wakeups —
//     exercised with real threads so TSan also covers the wrapper layer.
//  2. On non-Clang compilers every CSC_* annotation macro expands to
//     nothing, proven at compile time by stringizing an annotated
//     declaration fragment. A GCC build that suddenly saw a non-empty
//     expansion (someone widened the #if guard) would fail the
//     static_asserts below rather than break mysteriously at parse time.
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace csc {
namespace {

#if !defined(__clang__)
// Two-level stringize: CSC_STR2 expands its argument first, so an empty
// macro expansion yields "" (sizeof 1, the NUL).
#define CSC_STR2(x) #x
#define CSC_STR(x) CSC_STR2(x)
static_assert(sizeof(CSC_STR(CSC_GUARDED_BY(mu))) == 1,
              "CSC_GUARDED_BY must expand to nothing outside Clang");
static_assert(sizeof(CSC_STR(CSC_REQUIRES(mu))) == 1,
              "CSC_REQUIRES must expand to nothing outside Clang");
static_assert(sizeof(CSC_STR(CSC_EXCLUDES(mu))) == 1,
              "CSC_EXCLUDES must expand to nothing outside Clang");
static_assert(sizeof(CSC_STR(CSC_ACQUIRE())) == 1,
              "CSC_ACQUIRE must expand to nothing outside Clang");
static_assert(sizeof(CSC_STR(CSC_CAPABILITY("mutex"))) == 1,
              "CSC_CAPABILITY must expand to nothing outside Clang");
static_assert(sizeof(CSC_STR(CSC_SCOPED_CAPABILITY)) == 1,
              "CSC_SCOPED_CAPABILITY must expand to nothing outside Clang");
static_assert(sizeof(CSC_STR(CSC_NO_THREAD_SAFETY_ANALYSIS)) == 1,
              "CSC_NO_THREAD_SAFETY_ANALYSIS must be a no-op outside Clang");
#undef CSC_STR
#undef CSC_STR2
#endif  // !defined(__clang__)

TEST(ThreadAnnotationsTest, MutexLockExcludesConcurrentCriticalSections) {
  Mutex mu;
  int counter CSC_GUARDED_BY(mu) = 0;
  std::vector<std::thread> threads;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 2000;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  MutexLock lock(mu);
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(ThreadAnnotationsTest, MutexTryLockReportsContention) {
  Mutex mu;
  mu.Lock();
  EXPECT_FALSE(mu.TryLock());
  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(ThreadAnnotationsTest, SharedMutexAdmitsConcurrentReaders) {
  SharedMutex mu;
  // Both readers hold the lock shared and wait (spinning, so this works on
  // one core too) until the other is also inside: if shared acquisition
  // excluded them, neither could see readers_in == 2 and the test would
  // time out instead of passing.
  std::atomic<int> readers_in{0};
  std::atomic<bool> both_seen{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      ReaderMutexLock lock(mu);
      readers_in.fetch_add(1, std::memory_order_acq_rel);
      while (readers_in.load(std::memory_order_acquire) < 2) {
        std::this_thread::yield();
      }
      both_seen.store(true, std::memory_order_release);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_TRUE(both_seen.load());
}

TEST(ThreadAnnotationsTest, SharedMutexWriterExcludesReaders) {
  SharedMutex mu;
  int value CSC_GUARDED_BY(mu) = 0;
  std::atomic<int> readers_in{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        ReaderMutexLock lock(mu);
        readers_in.fetch_add(1, std::memory_order_acq_rel);
        EXPECT_GE(value, 0);
        readers_in.fetch_sub(1, std::memory_order_acq_rel);
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < 200; ++i) {
      WriterMutexLock lock(mu);
      // Writer exclusion: no reader can be inside while we hold exclusive.
      EXPECT_EQ(readers_in.load(std::memory_order_acquire), 0);
      ++value;
    }
  });
  for (std::thread& thread : threads) thread.join();
  WriterMutexLock lock(mu);
  EXPECT_EQ(value, 200);
}

TEST(ThreadAnnotationsTest, CondVarWakesExplicitWhileLoopWaiter) {
  Mutex mu;
  CondVar cv;
  bool ready CSC_GUARDED_BY(mu) = false;
  int observed = -1;
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) cv.Wait(lock);
    observed = 1;
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyAll();
  waiter.join();
  EXPECT_EQ(observed, 1);
}

}  // namespace
}  // namespace csc
