// Structured-graph edge cases where expected answers are known in closed
// form: rings, stars, paths, complete graphs, disjoint components.
#include <gtest/gtest.h>

#include "baseline/bfs_cycle.h"
#include "csc/csc_index.h"
#include "graph/ordering.h"
#include "hpspc/hpspc_index.h"
#include "tests/test_util.h"

namespace csc {
namespace {

DiGraph Ring(Vertex n) {
  DiGraph g(n);
  for (Vertex v = 0; v < n; ++v) g.AddEdge(v, (v + 1) % n);
  return g;
}

TEST(StructureTest, RingHasOneCycleOfLengthNThroughEveryVertex) {
  for (Vertex n : {3u, 5u, 12u, 40u}) {
    DiGraph g = Ring(n);
    CscIndex index = CscIndex::Build(g, DegreeOrdering(g));
    for (Vertex v = 0; v < n; ++v) {
      EXPECT_EQ(index.Query(v), (CycleCount{n, 1})) << "n=" << n;
    }
  }
}

TEST(StructureTest, TwoRingsSharingAVertex) {
  // Vertex 0 sits on a 3-ring {0,1,2} and a 5-ring {0,3,4,5,6}.
  DiGraph g(7);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  g.AddEdge(0, 3);
  g.AddEdge(3, 4);
  g.AddEdge(4, 5);
  g.AddEdge(5, 6);
  g.AddEdge(6, 0);
  CscIndex index = CscIndex::Build(g, DegreeOrdering(g));
  EXPECT_EQ(index.Query(0), (CycleCount{3, 1}));  // the 3-ring wins at 0
  EXPECT_EQ(index.Query(1), (CycleCount{3, 1}));
  EXPECT_EQ(index.Query(4), (CycleCount{5, 1}));  // 5-ring members
}

TEST(StructureTest, StarHasNoCycles) {
  DiGraph g(10);
  for (Vertex v = 1; v < 10; ++v) g.AddEdge(0, v);
  CscIndex index = CscIndex::Build(g, DegreeOrdering(g));
  for (Vertex v = 0; v < 10; ++v) {
    EXPECT_EQ(index.Query(v).count, 0u);
  }
}

TEST(StructureTest, CompleteDigraphAllTwoCycles) {
  // K_n with all reciprocal edges: every vertex lies on (n-1) 2-cycles.
  const Vertex n = 6;
  DiGraph g(n);
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = 0; v < n; ++v) {
      if (u != v) g.AddEdge(u, v);
    }
  }
  CscIndex index = CscIndex::Build(g, DegreeOrdering(g));
  HpSpcIndex hpspc = HpSpcIndex::Build(g, DegreeOrdering(g));
  for (Vertex v = 0; v < n; ++v) {
    EXPECT_EQ(index.Query(v), (CycleCount{2, n - 1}));
    EXPECT_EQ(hpspc.CountCycles(v), (CycleCount{2, n - 1}));
  }
}

TEST(StructureTest, DirectedPathNoCycles) {
  DiGraph g(50);
  for (Vertex v = 0; v + 1 < 50; ++v) g.AddEdge(v, v + 1);
  CscIndex index = CscIndex::Build(g, DegreeOrdering(g));
  for (Vertex v = 0; v < 50; ++v) EXPECT_EQ(index.Query(v).count, 0u);
}

TEST(StructureTest, DisjointComponentsDoNotInterfere) {
  // A 3-ring and a 4-ring in separate components.
  DiGraph g(7);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  g.AddEdge(3, 4);
  g.AddEdge(4, 5);
  g.AddEdge(5, 6);
  g.AddEdge(6, 3);
  CscIndex index = CscIndex::Build(g, DegreeOrdering(g));
  for (Vertex v = 0; v < 3; ++v) EXPECT_EQ(index.Query(v), (CycleCount{3, 1}));
  for (Vertex v = 3; v < 7; ++v) EXPECT_EQ(index.Query(v), (CycleCount{4, 1}));
}

TEST(StructureTest, ManyParallelShortestCyclesCountExactly) {
  // k disjoint 0 -> x_i -> 0' routes... realized as 0 -> x_i -> 1 -> 0:
  // SCCnt(0) = k with length 3.
  const Vertex k = 20;
  DiGraph g(2 + k);
  for (Vertex i = 0; i < k; ++i) {
    g.AddEdge(0, 2 + i);
    g.AddEdge(2 + i, 1);
  }
  g.AddEdge(1, 0);
  CscIndex index = CscIndex::Build(g, DegreeOrdering(g));
  EXPECT_EQ(index.Query(0), (CycleCount{3, k}));
  EXPECT_EQ(index.Query(1), (CycleCount{3, k}));
  EXPECT_EQ(index.Query(2), (CycleCount{3, 1}));
}

TEST(StructureTest, CountMultiplicationAcrossStages) {
  // 0 -> {a1,a2,a3} -> {b1,b2} -> 0 complete between stages:
  // shortest cycles through 0 have length 3 and count 3*2 = 6.
  DiGraph g(6);
  for (Vertex a = 1; a <= 3; ++a) {
    g.AddEdge(0, a);
    for (Vertex b = 4; b <= 5; ++b) g.AddEdge(a, b);
  }
  g.AddEdge(4, 0);
  g.AddEdge(5, 0);
  CscIndex index = CscIndex::Build(g, DegreeOrdering(g));
  EXPECT_EQ(index.Query(0), (CycleCount{3, 6}));
  // Each a_i lies on 2 of them; each b_j on 3.
  EXPECT_EQ(index.Query(1), (CycleCount{3, 2}));
  EXPECT_EQ(index.Query(4), (CycleCount{3, 3}));
}

TEST(StructureTest, IsolatedVerticesSurviveIndexing) {
  DiGraph g(10);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  CscIndex index = CscIndex::Build(g, DegreeOrdering(g));
  EXPECT_EQ(index.Query(0), (CycleCount{2, 1}));
  for (Vertex v = 2; v < 10; ++v) {
    EXPECT_EQ(index.Query(v), (CycleCount{kInfDist, 0}));
  }
}

TEST(StructureTest, HpSpcNonCanonicalCountOnFigure2IsSeven) {
  // Hand-derived from Table II: exactly seven entries count a strict subset
  // of their pair's shortest paths — L_in(v4):(v7,5,1); L_out(v8):(v7,5,1),
  // (v4,4,1); L_out(v9):(v7,4,1),(v4,3,1); L_out(v10):(v7,3,1),(v4,2,1).
  DiGraph g = Figure2Graph();
  HpSpcIndex index = HpSpcIndex::Build(g, Figure2Ordering());
  EXPECT_EQ(index.build_stats().non_canonical_entries, 7u);
}

}  // namespace
}  // namespace csc
