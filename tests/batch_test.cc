#include "dynamic/batch.h"

#include <gtest/gtest.h>

#include "baseline/bfs_cycle.h"
#include "dynamic/incremental.h"
#include "graph/bipartite.h"
#include "graph/ordering.h"
#include "tests/test_util.h"
#include "workload/update_workload.h"

namespace csc {
namespace {

CscIndex BuildIndex(const DiGraph& graph) {
  return CscIndex::Build(graph, DegreeOrdering(graph));
}

// Asserts that `index` answers every vertex like a BFS oracle on `graph`.
void ExpectMatchesOracle(const CscIndex& index, const DiGraph& graph) {
  BfsCycleCounter oracle(graph);
  for (Vertex v = 0; v < graph.num_vertices(); ++v) {
    ASSERT_EQ(index.Query(v), oracle.CountCycles(v)) << "vertex " << v;
  }
}

TEST(RecoverOriginalGraphTest, RoundTripsConversion) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    DiGraph graph = RandomGraph(60, 2.5, seed);
    EXPECT_EQ(RecoverOriginalGraph(BipartiteConversion(graph)), graph);
  }
}

TEST(BatchTest, EmptyBatchIsNoOp) {
  DiGraph graph = Figure2Graph();
  CscIndex index = BuildIndex(graph);
  BatchResult result = ApplyUpdates(index, {});
  EXPECT_EQ(result.inserted, 0u);
  EXPECT_EQ(result.removed, 0u);
  EXPECT_EQ(result.skipped, 0u);
  EXPECT_FALSE(result.rebuilt);
  ExpectMatchesOracle(index, graph);
}

TEST(BatchTest, InsertOnlyBatchMatchesSequential) {
  DiGraph graph = RandomGraph(50, 2.0, 3);
  CscIndex index = BuildIndex(graph);
  std::vector<Edge> new_edges = SampleNewEdges(graph, 8, 1);

  std::vector<EdgeUpdate> updates;
  DiGraph target = graph;
  for (const Edge& e : new_edges) {
    updates.push_back(EdgeUpdate::Insert(e.from, e.to));
    target.AddEdge(e.from, e.to);
  }
  BatchOptions options;
  options.rebuild_threshold = 2.0;  // force the per-edge path
  BatchResult result = ApplyUpdates(index, updates, options);
  EXPECT_EQ(result.inserted, new_edges.size());
  EXPECT_FALSE(result.rebuilt);
  ExpectMatchesOracle(index, target);
}

TEST(BatchTest, RemoveThenInsertBatch) {
  DiGraph graph = RandomGraph(50, 2.5, 5);
  CscIndex index = BuildIndex(graph);
  std::vector<Edge> removals = SampleExistingEdges(graph, 5, 2);
  std::vector<Edge> inserts = SampleNewEdges(graph, 5, 3);

  std::vector<EdgeUpdate> updates;
  DiGraph target = graph;
  for (const Edge& e : removals) {
    updates.push_back(EdgeUpdate::Remove(e.from, e.to));
    target.RemoveEdge(e.from, e.to);
  }
  for (const Edge& e : inserts) {
    updates.push_back(EdgeUpdate::Insert(e.from, e.to));
    target.AddEdge(e.from, e.to);
  }
  BatchOptions options;
  options.rebuild_threshold = 2.0;
  BatchResult result = ApplyUpdates(index, updates, options);
  EXPECT_EQ(result.removed, removals.size());
  EXPECT_EQ(result.inserted, inserts.size());
  EXPECT_EQ(result.inserted + result.removed + result.skipped,
            updates.size());
  ExpectMatchesOracle(index, target);
}

TEST(BatchTest, CancellingPairsAreSkipped) {
  DiGraph graph = Figure2Graph();
  CscIndex index = BuildIndex(graph);
  // Insert a new edge then remove it again inside one batch; and remove an
  // existing edge then re-insert it. Net effect: nothing.
  std::vector<EdgeUpdate> updates = {
      EdgeUpdate::Insert(7, 0), EdgeUpdate::Remove(7, 0),
      EdgeUpdate::Remove(0, 2), EdgeUpdate::Insert(0, 2)};
  BatchResult result = ApplyUpdates(index, updates);
  EXPECT_EQ(result.inserted, 0u);
  EXPECT_EQ(result.removed, 0u);
  EXPECT_EQ(result.skipped, 4u);
  EXPECT_FALSE(result.rebuilt);
  ExpectMatchesOracle(index, graph);
}

TEST(BatchTest, InvalidUpdatesAreSkipped) {
  DiGraph graph = Figure2Graph();
  CscIndex index = BuildIndex(graph);
  std::vector<EdgeUpdate> updates = {
      EdgeUpdate::Insert(3, 3),     // self-loop
      EdgeUpdate::Insert(0, 2),     // already present
      EdgeUpdate::Remove(7, 0),     // absent
      EdgeUpdate::Insert(0, 9999),  // out of range
  };
  BatchResult result = ApplyUpdates(index, updates);
  EXPECT_EQ(result.skipped, 4u);
  EXPECT_EQ(result.inserted + result.removed, 0u);
  ExpectMatchesOracle(index, graph);
}

TEST(BatchTest, DuplicateInsertsCollapseToOne) {
  DiGraph graph = Figure2Graph();
  CscIndex index = BuildIndex(graph);
  std::vector<EdgeUpdate> updates = {
      EdgeUpdate::Insert(7, 0), EdgeUpdate::Insert(7, 0),
      EdgeUpdate::Insert(7, 0)};
  BatchOptions options;
  options.rebuild_threshold = 2.0;
  BatchResult result = ApplyUpdates(index, updates, options);
  EXPECT_EQ(result.inserted, 1u);
  EXPECT_EQ(result.skipped, 2u);
  DiGraph target = graph;
  target.AddEdge(7, 0);
  ExpectMatchesOracle(index, target);
}

TEST(BatchTest, LargeBatchTriggersRebuild) {
  DiGraph graph = RandomGraph(40, 2.0, 7);
  CscIndex index = BuildIndex(graph);
  std::vector<Edge> inserts = SampleNewEdges(graph, 40, 4);
  std::vector<EdgeUpdate> updates;
  DiGraph target = graph;
  for (const Edge& e : inserts) {
    updates.push_back(EdgeUpdate::Insert(e.from, e.to));
    target.AddEdge(e.from, e.to);
  }
  BatchOptions options;
  options.rebuild_threshold = 0.25;  // 40 new edges on ~80: way past it
  BatchResult result = ApplyUpdates(index, updates, options);
  EXPECT_TRUE(result.rebuilt);
  EXPECT_EQ(result.inserted, inserts.size());
  ExpectMatchesOracle(index, target);
}

TEST(BatchTest, RebuiltIndexSupportsFurtherMaintenance) {
  DiGraph graph = RandomGraph(40, 2.0, 9);
  CscIndex index = BuildIndex(graph);
  std::vector<Edge> inserts = SampleNewEdges(graph, 30, 5);
  std::vector<EdgeUpdate> updates;
  DiGraph target = graph;
  for (const Edge& e : inserts) {
    updates.push_back(EdgeUpdate::Insert(e.from, e.to));
    target.AddEdge(e.from, e.to);
  }
  BatchOptions options;
  options.rebuild_threshold = 0.0;  // always rebuild
  ASSERT_TRUE(ApplyUpdates(index, updates, options).rebuilt);

  // The rebuilt index is fresh (minimal): removals must work on it.
  std::vector<Edge> removals = SampleExistingEdges(target, 4, 6);
  std::vector<EdgeUpdate> removal_batch;
  for (const Edge& e : removals) {
    removal_batch.push_back(EdgeUpdate::Remove(e.from, e.to));
    target.RemoveEdge(e.from, e.to);
  }
  BatchOptions per_edge;
  per_edge.rebuild_threshold = 2.0;
  BatchResult result = ApplyUpdates(index, removal_batch, per_edge);
  EXPECT_EQ(result.removed, removals.size());
  ExpectMatchesOracle(index, target);
}

TEST(BatchTest, MinimalityStrategyKeepsIndexMinimalAcrossBatches) {
  DiGraph graph = RandomGraph(40, 2.5, 11);
  CscIndex::Options build_options;
  build_options.maintain_inverted_index = true;
  CscIndex index = CscIndex::Build(graph, DegreeOrdering(graph), build_options);

  BatchOptions options;
  options.strategy = MaintenanceStrategy::kMinimality;
  options.rebuild_threshold = 2.0;

  DiGraph target = graph;
  for (uint64_t round = 0; round < 3; ++round) {
    std::vector<Edge> inserts = SampleNewEdges(target, 3, 20 + round);
    std::vector<EdgeUpdate> updates;
    for (const Edge& e : inserts) {
      updates.push_back(EdgeUpdate::Insert(e.from, e.to));
      target.AddEdge(e.from, e.to);
    }
    // Minimality-maintained index admits removals in a later batch.
    std::vector<Edge> removals = SampleExistingEdges(target, 2, 30 + round);
    for (const Edge& e : removals) {
      updates.push_back(EdgeUpdate::Remove(e.from, e.to));
      target.RemoveEdge(e.from, e.to);
    }
    ApplyUpdates(index, updates, options);
    ExpectMatchesOracle(index, target);
  }
}

TEST(RebuildIndexTest, PreservesAnswersAndRestoresMinimality) {
  DiGraph graph = RandomGraph(50, 2.5, 13);
  CscIndex index = BuildIndex(graph);
  // Pile up redundancy-mode insertions.
  DiGraph target = graph;
  for (const Edge& e : SampleNewEdges(graph, 10, 14)) {
    InsertEdge(index, e.from, e.to);
    target.AddEdge(e.from, e.to);
  }
  uint64_t entries_before = index.TotalEntries();
  RebuildIndex(index);
  // A fresh build is never larger than the redundancy-maintained index.
  EXPECT_LE(index.TotalEntries(), entries_before);
  ExpectMatchesOracle(index, target);

  // And the rebuilt index equals a from-scratch build entry-for-entry.
  CscIndex fresh = BuildIndex(target);
  EXPECT_EQ(index.labeling(), fresh.labeling());
}

}  // namespace
}  // namespace csc
