// Figure 9 reproduction: (a) index construction time and (b) index size for
// HP-SPC (baseline) vs CSC (proposed) on every dataset, plus (c) the
// parallel-construction scaling matrix: build time per thread count for the
// rank-batched parallel builder, against the sequential builder as the
// num_threads=0 baseline.
//
// Expected shape (paper §VI.B.1-2): construction times within ~1.4x of each
// other in both directions, and index sizes within a few percent (CSC's
// size is its §IV.E-reduced form, which is what a deployment stores). The
// scaling matrix targets >= 3x at 8 threads on the largest graph on an
// >= 8-core machine; every thread count's labeling is verified identical to
// the sequential build ("identical" column).
//
// Emits BENCH_fig9_index.json: "size" rows mirror table (a)+(b), "scaling"
// rows mirror table (c) with per-thread-count build times and speedups.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "csc/compact_index.h"
#include "csc/csc_index.h"
#include "graph/ordering.h"
#include "hpspc/hpspc_index.h"
#include "workload/reporter.h"

namespace {

// CSC_BENCH_THREADS: comma-separated construction worker counts (0 = the
// sequential builder). The 0 baseline is always measured even when absent
// from the list, so speedups are well-defined.
std::vector<unsigned> ThreadsFromEnv() {
  std::vector<unsigned> threads;
  const char* env = std::getenv("CSC_BENCH_THREADS");
  if (env != nullptr && *env != '\0') {
    unsigned value = 0;
    bool have_digit = false;
    for (const char* p = env;; ++p) {
      if (*p >= '0' && *p <= '9') {
        value = value * 10 + static_cast<unsigned>(*p - '0');
        have_digit = true;
      } else {
        // Any non-digit separates values, so "0 8" is {0, 8} — not {8}.
        if (have_digit) threads.push_back(value);
        value = 0;
        have_digit = false;
        if (*p == '\0') break;
      }
    }
  }
  if (threads.empty()) threads = {0, 1, 2, 4, 8};
  return threads;
}

}  // namespace

int main() {
  using namespace csc;
  double scale = BenchScaleFromEnv();
  auto datasets = BenchDatasetsFromEnv();
  std::vector<unsigned> thread_counts = ThreadsFromEnv();
  bench::PrintBanner("Figure 9: Index Time (sec), Index Size (MB), and "
                     "Parallel Construction Scaling",
                     datasets, scale);
  std::printf("# threads: ");
  for (unsigned t : thread_counts) std::printf("%u ", t);
  std::printf("(CSC_BENCH_THREADS; 0 = sequential builder)\n");

  JsonBenchReporter json("fig9_index");

  TableReporter table(
      "Figure 9(a)+(b): Index Construction Time and Index Size",
      {"Graph", "HP-SPC time(s)", "CSC time(s)", "time ratio",
       "HP-SPC size(MB)", "CSC size(MB)", "size ratio", "CSC entries"});
  TableReporter scaling(
      "Figure 9(c): Parallel Construction (build seconds vs threads)",
      {"Graph", "threads", "CSC build(s)", "speedup", "HP-SPC build(s)",
       "speedup", "identical"});

  for (const DatasetSpec& spec : datasets) {
    DiGraph g = MaterializeDataset(spec, scale);
    VertexOrdering order = DegreeOrdering(g);

    // Sequential baseline: feeds table (a)+(b) and anchors the speedups and
    // the bit-identity checks of the scaling matrix.
    HpSpcIndex hpspc_seq = HpSpcIndex::Build(g, order);
    CscIndex csc_seq = CscIndex::Build(g, order);
    CompactIndex compact = CompactIndex::FromIndex(csc_seq);

    double hpspc_time = hpspc_seq.build_stats().seconds;
    double csc_time = csc_seq.build_stats().seconds;
    double hpspc_mb = hpspc_seq.labeling().SizeBytes() / 1048576.0;
    double csc_mb = compact.SizeBytes() / 1048576.0;
    table.AddRow({spec.name, TableReporter::FormatDouble(hpspc_time),
                  TableReporter::FormatDouble(csc_time),
                  TableReporter::FormatDouble(
                      hpspc_time > 0 ? csc_time / hpspc_time : 0, 2),
                  TableReporter::FormatDouble(hpspc_mb),
                  TableReporter::FormatDouble(csc_mb),
                  TableReporter::FormatDouble(
                      hpspc_mb > 0 ? csc_mb / hpspc_mb : 0, 2),
                  TableReporter::FormatCount(compact.TotalEntries())});
    json.BeginRow()
        .Field("section", std::string("size"))
        .Field("graph", spec.name)
        .Field("hpspc_build_s", hpspc_time)
        .Field("csc_build_s", csc_time)
        .Field("hpspc_size_mb", hpspc_mb)
        .Field("csc_size_mb", csc_mb)
        .Field("csc_entries", compact.TotalEntries());
    std::printf("[fig9] %s done: HP-SPC %.3fs / CSC %.3fs (sequential)\n",
                spec.name.c_str(), hpspc_time, csc_time);

    for (unsigned t : thread_counts) {
      double csc_t, hpspc_t;
      bool identical;
      if (t == 0) {
        csc_t = csc_time;
        hpspc_t = hpspc_time;
        identical = true;  // the baseline is its own reference
      } else {
        CscIndex::Options options;
        options.build_threads = t;
        CscIndex csc_par = CscIndex::Build(g, order, options);
        HpSpcIndex hpspc_par = HpSpcIndex::Build(g, order, t);
        csc_t = csc_par.build_stats().seconds;
        hpspc_t = hpspc_par.build_stats().seconds;
        identical = csc_par.labeling() == csc_seq.labeling() &&
                    hpspc_par.labeling() == hpspc_seq.labeling();
        if (!identical) {
          std::fprintf(stderr,
                       "[fig9] WARNING: %s threads=%u labeling differs from "
                       "the sequential build\n",
                       spec.name.c_str(), t);
        }
      }
      double csc_speedup = csc_t > 0 ? csc_time / csc_t : 0;
      double hpspc_speedup = hpspc_t > 0 ? hpspc_time / hpspc_t : 0;
      scaling.AddRow({spec.name, TableReporter::FormatCount(t),
                      TableReporter::FormatDouble(csc_t),
                      TableReporter::FormatDouble(csc_speedup, 2),
                      TableReporter::FormatDouble(hpspc_t),
                      TableReporter::FormatDouble(hpspc_speedup, 2),
                      identical ? "yes" : "NO"});
      json.BeginRow()
          .Field("section", std::string("scaling"))
          .Field("graph", spec.name)
          .Field("threads", static_cast<uint64_t>(t))
          .Field("csc_build_s", csc_t)
          .Field("csc_speedup", csc_speedup)
          .Field("hpspc_build_s", hpspc_t)
          .Field("hpspc_speedup", hpspc_speedup)
          .Field("identical", static_cast<uint64_t>(identical ? 1 : 0));
      std::printf("[fig9] %s threads=%u: CSC %.3fs (%.2fx) / HP-SPC %.3fs "
                  "(%.2fx)\n",
                  spec.name.c_str(), t, csc_t, csc_speedup, hpspc_t,
                  hpspc_speedup);
    }
  }
  table.Print();
  scaling.Print();
  table.WriteCsv(bench::CsvPath("fig9_index"));
  scaling.WriteCsv(bench::CsvPath("fig9_index_scaling"));
  json.Write("BENCH_fig9_index.json");
  return 0;
}
