// Figure 9 reproduction: (a) index construction time and (b) index size for
// HP-SPC (baseline) vs CSC (proposed) on every dataset.
//
// Expected shape (paper §VI.B.1-2): construction times within ~1.4x of each
// other in both directions, and index sizes within a few percent (CSC's
// size is its §IV.E-reduced form, which is what a deployment stores).
#include <cstdio>

#include "bench/bench_common.h"
#include "csc/compact_index.h"
#include "csc/csc_index.h"
#include "graph/ordering.h"
#include "hpspc/hpspc_index.h"
#include "workload/reporter.h"

int main() {
  using namespace csc;
  double scale = BenchScaleFromEnv();
  auto datasets = BenchDatasetsFromEnv();
  bench::PrintBanner("Figure 9: Index Time (sec) and Index Size (MB)",
                     datasets, scale);

  TableReporter table(
      "Figure 9(a)+(b): Index Construction Time and Index Size",
      {"Graph", "HP-SPC time(s)", "CSC time(s)", "time ratio",
       "HP-SPC size(MB)", "CSC size(MB)", "size ratio", "CSC entries"});
  for (const DatasetSpec& spec : datasets) {
    DiGraph g = MaterializeDataset(spec, scale);
    VertexOrdering order = DegreeOrdering(g);
    HpSpcIndex hpspc = HpSpcIndex::Build(g, order);
    CscIndex csc_index = CscIndex::Build(g, order);
    CompactIndex compact = CompactIndex::FromIndex(csc_index);

    double hpspc_time = hpspc.build_stats().seconds;
    double csc_time = csc_index.build_stats().seconds;
    double hpspc_mb = hpspc.labeling().SizeBytes() / 1048576.0;
    double csc_mb = compact.SizeBytes() / 1048576.0;
    table.AddRow({spec.name, TableReporter::FormatDouble(hpspc_time),
                  TableReporter::FormatDouble(csc_time),
                  TableReporter::FormatDouble(
                      hpspc_time > 0 ? csc_time / hpspc_time : 0, 2),
                  TableReporter::FormatDouble(hpspc_mb),
                  TableReporter::FormatDouble(csc_mb),
                  TableReporter::FormatDouble(
                      hpspc_mb > 0 ? csc_mb / hpspc_mb : 0, 2),
                  TableReporter::FormatCount(compact.TotalEntries())});
    std::printf("[fig9] %s done: HP-SPC %.3fs / CSC %.3fs\n",
                spec.name.c_str(), hpspc_time, csc_time);
  }
  table.Print();
  table.WriteCsv(bench::CsvPath("fig9_index"));
  return 0;
}
