// Micro-benchmarks (google-benchmark) of the hot kernels behind every query
// and construction step: label-entry packing, label-set joins and upserts,
// the packed-arena join kernels (linear baseline vs. the SIMD/galloping
// fast path, across run-length skews), and end-to-end SCCnt queries on a
// built index.
//
// lint:allow-no-json-bench(google-benchmark owns the output format here;
// use --benchmark_format=json for machine-readable rows instead of the
// project's JsonBenchReporter)
//
// CI runs this binary in smoke mode (--benchmark_min_time=0.01) on both
// architectures so every kernel variant (scalar / SSE2 / NEON / galloping)
// compiles and executes; build with -DCSC_NO_SIMD=ON to pin the scalar
// fallback.
#include <benchmark/benchmark.h>

#include <memory>

#include "baseline/bfs_cycle.h"
#include "core/label_arena.h"
#include "csc/csc_index.h"
#include "graph/generators.h"
#include "graph/ordering.h"
#include "csc/compact_index.h"
#include "csc/frozen_index.h"
#include "labeling/compressed.h"
#include "labeling/label_set.h"
#include "util/random.h"
#include "util/varint.h"

namespace csc {
namespace {

LabelSet MakeLabelSet(size_t entries, uint64_t seed, Rank stride) {
  Rng rng(seed);
  LabelSet labels;
  Rank rank = 0;
  for (size_t i = 0; i < entries; ++i) {
    rank += 1 + static_cast<Rank>(rng.NextBounded(stride));
    labels.Append(LabelEntry(rank, static_cast<Dist>(rng.NextBounded(50)),
                             1 + rng.NextBounded(5)));
  }
  return labels;
}

void BM_LabelEntryPackUnpack(benchmark::State& state) {
  uint64_t acc = 0;
  Vertex hub = 123;
  for (auto _ : state) {
    LabelEntry e(hub, 45, 678);
    acc += e.hub() + e.dist() + e.count();
    hub = static_cast<Vertex>(acc & LabelEntry::kMaxHub);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_LabelEntryPackUnpack);

void BM_JoinLabels(benchmark::State& state) {
  size_t entries = static_cast<size_t>(state.range(0));
  // Stride 3 gives roughly one common hub per three entries.
  LabelSet out = MakeLabelSet(entries, 1, 3);
  LabelSet in = MakeLabelSet(entries, 2, 3);
  for (auto _ : state) {
    JoinResult r = JoinLabels(out, in);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * entries * 2);
}
BENCHMARK(BM_JoinLabels)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

// A label set of `entries` ranks spread across a shared universe, so two
// runs of different lengths still interleave end to end — the shape where
// the join kernels' skipping actually matters (same-stride runs of skewed
// lengths would just exhaust the short side early).
LabelSet RunSpanningUniverse(size_t entries, Rank universe, uint64_t seed) {
  Rng rng(seed);
  LabelSet labels;
  Rank stride = universe / static_cast<Rank>(entries);
  if (stride < 1) stride = 1;
  Rank rank = 0;
  for (size_t i = 0; i < entries; ++i) {
    rank += 1 + static_cast<Rank>(rng.NextBounded(2 * stride - 1));
    labels.Append(LabelEntry(rank, static_cast<Dist>(rng.NextBounded(50)),
                             1 + rng.NextBounded(5)));
  }
  return labels;
}

// The packed-packed arena join across run-length skews: Args({na, nb}).
// BM_ArenaJoin runs the shipped kernel (SIMD-skip merge, galloping past
// kGallopSkewRatio); BM_ArenaJoinLinear is the reference linear merge the
// acceptance speedup is measured against.
void ArenaJoinBench(benchmark::State& state, bool linear) {
  size_t na = static_cast<size_t>(state.range(0));
  size_t nb = static_cast<size_t>(state.range(1));
  Rank universe = static_cast<Rank>(4 * (na > nb ? na : nb));
  LabelArena a = LabelArena::FromLabelSets(
      {RunSpanningUniverse(na, universe, 21)}, ArenaEncoding::kPacked);
  LabelArena b = LabelArena::FromLabelSets(
      {RunSpanningUniverse(nb, universe, 22)}, ArenaEncoding::kPacked);
  for (auto _ : state) {
    JoinResult r = linear ? LabelArena::JoinLinear(a, 0, b, 0)
                          : LabelArena::Join(a, 0, b, 0);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * (na + nb));
}

void BM_ArenaJoin(benchmark::State& state) { ArenaJoinBench(state, false); }
void BM_ArenaJoinLinear(benchmark::State& state) {
  ArenaJoinBench(state, true);
}
#define CSC_ARENA_JOIN_ARGS               \
  Args({16, 16})                          \
      ->Args({64, 64})                    \
      ->Args({256, 256})                  \
      ->Args({1024, 1024})                \
      ->Args({32, 64})                    \
      ->Args({64, 256})                   \
      ->Args({64, 512})                   \
      ->Args({64, 2048})                  \
      ->Args({16, 256})                 \
      ->Args({16, 4096})                  \
      ->Args({64, 4096})                  \
      ->Args({256, 16384})
BENCHMARK(BM_ArenaJoin)->CSC_ARENA_JOIN_ARGS;
BENCHMARK(BM_ArenaJoinLinear)->CSC_ARENA_JOIN_ARGS;
#undef CSC_ARENA_JOIN_ARGS

// The same join through the varint decode path (CompressedIndex's kernel).
void BM_ArenaJoinVarint(benchmark::State& state) {
  size_t entries = static_cast<size_t>(state.range(0));
  Rank universe = static_cast<Rank>(4 * entries);
  LabelArena a = LabelArena::FromLabelSets(
      {RunSpanningUniverse(entries, universe, 23)}, ArenaEncoding::kVarint);
  LabelArena b = LabelArena::FromLabelSets(
      {RunSpanningUniverse(entries, universe, 24)}, ArenaEncoding::kVarint);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LabelArena::Join(a, 0, b, 0));
  }
  state.SetItemsProcessed(state.iterations() * entries * 2);
}
BENCHMARK(BM_ArenaJoinVarint)->Arg(64)->Arg(512);

void BM_LabelSetFind(benchmark::State& state) {
  LabelSet labels = MakeLabelSet(static_cast<size_t>(state.range(0)), 3, 2);
  Rng rng(4);
  Rank max_rank = labels.entries().back().hub();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        labels.Find(static_cast<Rank>(rng.NextBounded(max_rank + 1))));
  }
}
BENCHMARK(BM_LabelSetFind)->Arg(32)->Arg(512);

void BM_LabelSetInsertOrReplace(benchmark::State& state) {
  Rng rng(5);
  for (auto _ : state) {
    state.PauseTiming();
    LabelSet labels = MakeLabelSet(64, 6, 2);
    state.ResumeTiming();
    for (int i = 0; i < 16; ++i) {
      labels.InsertOrReplace(
          LabelEntry(static_cast<Rank>(rng.NextBounded(256)), 3, 1));
    }
    benchmark::DoNotOptimize(labels);
  }
}
BENCHMARK(BM_LabelSetInsertOrReplace);

// End-to-end query kernels on a mid-sized power-law graph.
class QueryFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State&) override {
    if (!index_) {
      graph_ = GeneratePreferentialAttachment(20000, 2, 0.1, 99);
      order_ = DegreeOrdering(graph_);
      index_ = std::make_unique<CscIndex>(CscIndex::Build(graph_, order_));
    }
  }

 protected:
  static DiGraph graph_;
  static VertexOrdering order_;
  static std::unique_ptr<CscIndex> index_;
};
DiGraph QueryFixture::graph_;
VertexOrdering QueryFixture::order_;
std::unique_ptr<CscIndex> QueryFixture::index_;

BENCHMARK_F(QueryFixture, CscQuery)(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) {
    Vertex v = static_cast<Vertex>(rng.NextBounded(graph_.num_vertices()));
    benchmark::DoNotOptimize(index_->Query(v));
  }
}

BENCHMARK_F(QueryFixture, BfsQuery)(benchmark::State& state) {
  Rng rng(8);
  BfsCycleCounter counter(graph_);
  for (auto _ : state) {
    Vertex v = static_cast<Vertex>(rng.NextBounded(graph_.num_vertices()));
    benchmark::DoNotOptimize(counter.CountCycles(v));
  }
}

BENCHMARK_F(QueryFixture, FrozenQuery)(benchmark::State& state) {
  FrozenIndex frozen = FrozenIndex::FromIndex(*index_);
  Rng rng(9);
  for (auto _ : state) {
    Vertex v = static_cast<Vertex>(rng.NextBounded(graph_.num_vertices()));
    benchmark::DoNotOptimize(frozen.Query(v));
  }
}

BENCHMARK_F(QueryFixture, CompressedQuery)(benchmark::State& state) {
  CompressedIndex compressed =
      CompressedIndex::FromCompact(CompactIndex::FromIndex(*index_));
  Rng rng(10);
  for (auto _ : state) {
    Vertex v = static_cast<Vertex>(rng.NextBounded(graph_.num_vertices()));
    benchmark::DoNotOptimize(compressed.Query(v));
  }
}

BENCHMARK_F(QueryFixture, EdgeQuery)(benchmark::State& state) {
  // Through-edge queries on random vertex pairs (present or not: the query
  // cost is a label join either way).
  Rng rng(11);
  for (auto _ : state) {
    Vertex u = static_cast<Vertex>(rng.NextBounded(graph_.num_vertices()));
    Vertex v = static_cast<Vertex>(rng.NextBounded(graph_.num_vertices()));
    benchmark::DoNotOptimize(index_->QueryThroughEdge(u, v));
  }
}

void BM_VarintRoundTrip(benchmark::State& state) {
  // Encode+decode a stream of label-like triples (small rank deltas, small
  // distances, count 1) — the compressed index's per-entry kernel.
  std::vector<uint8_t> buffer;
  Rng rng(12);
  for (int i = 0; i < 1024; ++i) {
    AppendVarint(buffer, 1 + rng.NextBounded(16));
    AppendVarint(buffer, rng.NextBounded(64));
    AppendVarint(buffer, 1);
  }
  for (auto _ : state) {
    size_t pos = 0;
    uint64_t sink = 0;
    while (pos < buffer.size()) sink += DecodeVarint(buffer.data(), pos);
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 3072);
}
BENCHMARK(BM_VarintRoundTrip);

}  // namespace
}  // namespace csc

BENCHMARK_MAIN();
