// Table IV reproduction: the statistics of the nine benchmark graphs —
// paper-scale n/m alongside the synthetic stand-ins actually used here.
#include <cstdio>

#include "bench/bench_common.h"
#include "workload/reporter.h"

int main() {
  using namespace csc;
  double scale = BenchScaleFromEnv();
  auto datasets = BenchDatasetsFromEnv();
  bench::PrintBanner("Table IV: The Statistics of the Graphs", datasets,
                     scale);

  TableReporter table("Table IV: Graph Statistics",
                      {"Graph", "Dataset", "paper n", "paper m", "stand-in n",
                       "stand-in m", "avg deg"});
  for (const DatasetSpec& spec : datasets) {
    DiGraph g = MaterializeDataset(spec, scale);
    table.AddRow({spec.name, spec.description,
                  TableReporter::FormatCount(spec.paper_n),
                  TableReporter::FormatCount(spec.paper_m),
                  TableReporter::FormatCount(g.num_vertices()),
                  TableReporter::FormatCount(g.num_edges()),
                  TableReporter::FormatDouble(
                      g.num_vertices() == 0
                          ? 0.0
                          : static_cast<double>(g.num_edges()) /
                                g.num_vertices(),
                      2)});
  }
  table.Print();
  table.WriteCsv(bench::CsvPath("table4"));
  return 0;
}
