// Table IV reproduction: the statistics of the nine benchmark graphs —
// paper-scale n/m alongside the synthetic stand-ins actually used here.
#include <cstdio>

#include "bench/bench_common.h"
#include "workload/reporter.h"

int main() {
  using namespace csc;
  double scale = BenchScaleFromEnv();
  auto datasets = BenchDatasetsFromEnv();
  bench::PrintBanner("Table IV: The Statistics of the Graphs", datasets,
                     scale);

  TableReporter table("Table IV: Graph Statistics",
                      {"Graph", "Dataset", "paper n", "paper m", "stand-in n",
                       "stand-in m", "avg deg"});
  JsonBenchReporter json("table4");
  for (const DatasetSpec& spec : datasets) {
    DiGraph g = MaterializeDataset(spec, scale);
    double avg_deg = g.num_vertices() == 0
                         ? 0.0
                         : static_cast<double>(g.num_edges()) /
                               g.num_vertices();
    table.AddRow({spec.name, spec.description,
                  TableReporter::FormatCount(spec.paper_n),
                  TableReporter::FormatCount(spec.paper_m),
                  TableReporter::FormatCount(g.num_vertices()),
                  TableReporter::FormatCount(g.num_edges()),
                  TableReporter::FormatDouble(avg_deg, 2)});
    json.BeginRow()
        .Field("dataset", spec.name)
        .Field("paper_n", static_cast<uint64_t>(spec.paper_n))
        .Field("paper_m", static_cast<uint64_t>(spec.paper_m))
        .Field("standin_n", static_cast<uint64_t>(g.num_vertices()))
        .Field("standin_m", static_cast<uint64_t>(g.num_edges()))
        .Field("avg_degree", avg_deg);
  }
  table.Print();
  table.WriteCsv(bench::CsvPath("table4"));
  json.Write("BENCH_table4.json");
  return 0;
}
