#ifndef CSC_BENCH_BENCH_COMMON_H_
#define CSC_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/cycle_index.h"
#include "graph/digraph.h"
#include "workload/datasets.h"

namespace csc {
namespace bench {

/// Prints the standard bench banner: which datasets, at which scale.
inline void PrintBanner(const std::string& what,
                        const std::vector<DatasetSpec>& datasets,
                        double scale) {
  std::printf("# %s\n", what.c_str());
  std::printf(
      "# datasets: %zu (CSC_BENCH_DATASETS to filter), scale: %.2f "
      "(CSC_BENCH_SCALE to change)\n",
      datasets.size(), scale);
  std::printf(
      "# NOTE: graphs are synthetic stand-ins for the paper's SNAP/Konect "
      "datasets (DESIGN.md §6)\n");
}

/// Where bench CSV outputs land (created by the harness if missing).
inline std::string CsvPath(const std::string& name) {
  return "bench_" + name + ".csv";
}

/// Reads CSC_BENCH_BACKENDS (comma-separated CycleIndex registry names) so a
/// single bench binary can measure any backend subset; unknown names are
/// skipped with a warning and repeated names are measured once. Validation
/// is a registry lookup (IsRegisteredBackend) — no backend is constructed
/// just to be thrown away. `defaults` is used when the variable is unset or
/// empty — pass the backend set the paper figure compares.
inline std::vector<std::string> BenchBackendsFromEnv(
    std::vector<std::string> defaults) {
  const char* env = std::getenv("CSC_BENCH_BACKENDS");
  if (env == nullptr || *env == '\0') return defaults;
  std::vector<std::string> names;
  std::string current;
  for (const char* p = env;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!current.empty()) {
        if (!IsRegisteredBackend(current)) {
          std::fprintf(stderr, "# CSC_BENCH_BACKENDS: unknown backend '%s'\n",
                       current.c_str());
        } else if (std::find(names.begin(), names.end(), current) !=
                   names.end()) {
          std::fprintf(stderr,
                       "# CSC_BENCH_BACKENDS: duplicate backend '%s' ignored\n",
                       current.c_str());
        } else {
          names.push_back(current);
        }
        current.clear();
      }
      if (*p == '\0') break;
    } else {
      current.push_back(*p);
    }
  }
  return names.empty() ? defaults : names;
}

}  // namespace bench
}  // namespace csc

#endif  // CSC_BENCH_BENCH_COMMON_H_
