#ifndef CSC_BENCH_BENCH_COMMON_H_
#define CSC_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>

#include "graph/digraph.h"
#include "workload/datasets.h"

namespace csc {
namespace bench {

/// Prints the standard bench banner: which datasets, at which scale.
inline void PrintBanner(const std::string& what,
                        const std::vector<DatasetSpec>& datasets,
                        double scale) {
  std::printf("# %s\n", what.c_str());
  std::printf(
      "# datasets: %zu (CSC_BENCH_DATASETS to filter), scale: %.2f "
      "(CSC_BENCH_SCALE to change)\n",
      datasets.size(), scale);
  std::printf(
      "# NOTE: graphs are synthetic stand-ins for the paper's SNAP/Konect "
      "datasets (DESIGN.md §6)\n");
}

/// Where bench CSV outputs land (created by the harness if missing).
inline std::string CsvPath(const std::string& name) {
  return "bench_" + name + ".csv";
}

}  // namespace bench
}  // namespace csc

#endif  // CSC_BENCH_BENCH_COMMON_H_
