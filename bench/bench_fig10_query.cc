// Figure 10 reproduction: average SCCnt query time (microseconds) per
// min-in-out-degree cluster (High .. Bottom) for BFS, HP-SPC, and CSC, one
// sub-figure per dataset.
//
// Expected shape (paper §VI.B.3): BFS is orders of magnitude slower and
// degree-independent; HP-SPC degrades on high-degree clusters (its query
// fans out over min(indeg, outdeg) SPCnt probes); CSC stays flat at
// microseconds, up to two orders of magnitude faster than HP-SPC on the
// High cluster.
#include <cstdio>

#include "baseline/bfs_cycle.h"
#include "bench/bench_common.h"
#include "csc/csc_index.h"
#include "graph/ordering.h"
#include "hpspc/hpspc_index.h"
#include "util/timer.h"
#include "workload/query_workload.h"
#include "workload/reporter.h"

namespace {

constexpr size_t kMaxQueryVertices = 50000;  // the paper's cap
// BFS costs O(n + m) per query; cap how many BFS probes each cluster pays.
constexpr size_t kMaxBfsQueriesPerCluster = 30;

}  // namespace

int main() {
  using namespace csc;
  double scale = BenchScaleFromEnv();
  auto datasets = BenchDatasetsFromEnv();
  bench::PrintBanner("Figure 10: Query Times (us) per degree cluster",
                     datasets, scale);

  TableReporter table("Figure 10: Average Query Time (us)",
                      {"Graph", "Cluster", "#queries", "BFS", "HP-SPC", "CSC",
                       "HP-SPC/CSC"});
  for (const DatasetSpec& spec : datasets) {
    DiGraph g = MaterializeDataset(spec, scale);
    VertexOrdering order = DegreeOrdering(g);
    HpSpcIndex hpspc = HpSpcIndex::Build(g, order);
    CscIndex csc_index = CscIndex::Build(g, order);
    BfsCycleCounter bfs(g);
    QueryWorkload workload = MakeQueryWorkload(g, kMaxQueryVertices, 2022);

    for (int c = 0; c < kNumDegreeClusters; ++c) {
      const auto& queries = workload.queries[c];
      if (queries.empty()) continue;
      // BFS on a truncated prefix (it dominates runtime otherwise).
      size_t bfs_n = std::min(queries.size(), kMaxBfsQueriesPerCluster);
      Timer timer;
      for (size_t i = 0; i < bfs_n; ++i) bfs.CountCycles(queries[i]);
      double bfs_us = timer.ElapsedMicros() / bfs_n;

      timer.Restart();
      for (Vertex v : queries) hpspc.CountCycles(v);
      double hpspc_us = timer.ElapsedMicros() / queries.size();

      timer.Restart();
      for (Vertex v : queries) csc_index.Query(v);
      double csc_us = timer.ElapsedMicros() / queries.size();

      table.AddRow(
          {spec.name, DegreeClusterName(static_cast<DegreeCluster>(c)),
           TableReporter::FormatCount(queries.size()),
           TableReporter::FormatDouble(bfs_us, 2),
           TableReporter::FormatDouble(hpspc_us, 2),
           TableReporter::FormatDouble(csc_us, 2),
           TableReporter::FormatDouble(csc_us > 0 ? hpspc_us / csc_us : 0,
                                       1)});
    }
    std::printf("[fig10] %s done\n", spec.name.c_str());
  }
  table.Print();
  table.WriteCsv(bench::CsvPath("fig10_query"));
  return 0;
}
