// Figure 10 reproduction: average SCCnt query time (microseconds) per
// min-in-out-degree cluster (High .. Bottom), one sub-figure per dataset —
// generalized over the CycleIndex registry, so one binary reports any
// backend subset (CSC_BENCH_BACKENDS selects; default is the paper's
// BFS / HP-SPC / CSC comparison plus the flat serving forms). Every
// (dataset, cluster, backend) cell is also emitted to
// BENCH_fig10_query.json so perf history tracks the paper figure.
//
// Expected shape (paper §VI.B.3): BFS is orders of magnitude slower and
// degree-independent; HP-SPC degrades on high-degree clusters (its query
// fans out over min(indeg, outdeg) SPCnt probes); CSC and its serving forms
// stay flat at microseconds, up to two orders of magnitude faster than
// HP-SPC on the High cluster.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "core/cycle_index.h"
#include "util/timer.h"
#include "workload/query_workload.h"
#include "workload/reporter.h"

namespace {

constexpr size_t kMaxQueryVertices = 50000;  // the paper's cap
// BFS costs O(n + m) per query; cap how many probes each cluster pays for
// backends without an index.
constexpr size_t kMaxUnindexedQueriesPerCluster = 30;

bool IsUnindexed(const csc::BackendStats& stats) {
  return stats.label_entries == 0;
}

}  // namespace

int main() {
  using namespace csc;
  double scale = BenchScaleFromEnv();
  auto datasets = BenchDatasetsFromEnv();
  // "precompute" is excluded by default: its build is n BFS sweeps, far
  // slower than anything measured here. Opt in via CSC_BENCH_BACKENDS.
  auto backends = bench::BenchBackendsFromEnv(
      {"bfs", "hpspc", "csc", "compact", "frozen", "compressed"});
  bench::PrintBanner("Figure 10: Query Times (us) per degree cluster",
                     datasets, scale);
  std::printf("# backends: ");
  for (const auto& name : backends) std::printf("%s ", name.c_str());
  std::printf("(CSC_BENCH_BACKENDS to change)\n");

  std::vector<std::string> columns = {"Graph", "Cluster", "#queries"};
  columns.insert(columns.end(), backends.begin(), backends.end());
  TableReporter table("Figure 10: Average Query Time (us)", columns);
  // One flat row per (dataset, cluster, backend) so CI tracks every
  // backend's query-latency trajectory per degree cluster.
  JsonBenchReporter json("fig10_query");

  for (const DatasetSpec& spec : datasets) {
    DiGraph g = MaterializeDataset(spec, scale);
    QueryWorkload workload = MakeQueryWorkload(g, kMaxQueryVertices, 2022);

    // Build every backend once per dataset, then sweep the clusters.
    std::vector<std::unique_ptr<CycleIndex>> built;
    for (const auto& name : backends) {
      auto backend = MakeBackend(name);
      backend->Build(g);
      built.push_back(std::move(backend));
    }

    for (int c = 0; c < kNumDegreeClusters; ++c) {
      const auto& queries = workload.queries[c];
      if (queries.empty()) continue;
      std::vector<std::string> row = {
          spec.name, DegreeClusterName(static_cast<DegreeCluster>(c)),
          TableReporter::FormatCount(queries.size())};
      for (size_t b = 0; b < built.size(); ++b) {
        CycleIndex& backend = *built[b];
        // Unindexed backends answer on a truncated prefix (they dominate
        // runtime otherwise); indexed ones take the full cluster.
        size_t limit = IsUnindexed(backend.Stats())
                           ? std::min(queries.size(),
                                      kMaxUnindexedQueriesPerCluster)
                           : queries.size();
        Timer timer;
        for (size_t i = 0; i < limit; ++i) {
          backend.CountShortestCycles(queries[i]);
        }
        double avg_us = timer.ElapsedMicros() / limit;
        row.push_back(TableReporter::FormatDouble(avg_us, 2));
        json.BeginRow()
            .Field("dataset", spec.name)
            .Field("cluster", DegreeClusterName(static_cast<DegreeCluster>(c)))
            .Field("backend", backends[b])
            .Field("queries", static_cast<uint64_t>(limit))
            .Field("avg_query_us", avg_us);
      }
      table.AddRow(std::move(row));
    }
    std::printf("[fig10] %s done\n", spec.name.c_str());
  }
  table.Print();
  table.WriteCsv(bench::CsvPath("fig10_query"));
  json.Write("BENCH_fig10_query.json");
  return 0;
}
