// Batch maintenance (ours; the paper's §V handles one edge at a time):
// applying k edge insertions as one ApplyUpdates batch versus k single
// InsertEdge calls versus a full rebuild, across batch sizes. Quantifies
// (a) that batching itself adds no overhead beyond dedup, and (b) where the
// per-edge-repair vs rebuild crossover sits — the rebuild_threshold default
// comes from this curve.
//
// Expected shape: per-edge and batch(no-rebuild) track each other; rebuild
// is slower for small k but flat in k, so past a churn fraction it wins.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/bench_common.h"
#include "csc/csc_index.h"
#include "dynamic/batch.h"
#include "dynamic/incremental.h"
#include "graph/ordering.h"
#include "util/timer.h"
#include "workload/reporter.h"
#include "workload/update_workload.h"

int main() {
  using namespace csc;
  double scale = BenchScaleFromEnv();
  auto datasets = BenchDatasetsFromEnv();
  if (std::getenv("CSC_BENCH_DATASETS") == nullptr) {
    // An "ours" ablation: default to the three smallest graphs (run time is
    // dominated by the repeated per-strategy index builds); export
    // CSC_BENCH_DATASETS to sweep more.
    datasets = {FindDataset("G04").value(), FindDataset("G30").value(),
                FindDataset("EME").value()};
  }
  bench::PrintBanner("Batch updates: per-edge repair vs batch vs rebuild",
                     datasets, scale);

  TableReporter table(
      "Batch insertion strategies (total ms for the whole batch)",
      {"Graph", "k", "per-edge(ms)", "batch(ms)", "rebuild(ms)",
       "churn(%)"});
  JsonBenchReporter json("batch_updates");

  for (const DatasetSpec& spec : datasets) {
    DiGraph full = MaterializeDataset(spec, scale);
    for (size_t k : {10u, 50u, 200u}) {
      if (k * 4 > full.num_edges()) continue;
      std::vector<Edge> batch_edges = SampleExistingEdges(full, k, 9001);
      DiGraph reduced = full;
      for (const Edge& e : batch_edges) reduced.RemoveEdge(e.from, e.to);
      VertexOrdering order = DegreeOrdering(reduced);

      // Strategy 1: k independent InsertEdge calls.
      CscIndex per_edge = CscIndex::Build(reduced, order);
      Timer timer;
      for (const Edge& e : batch_edges) {
        InsertEdge(per_edge, e.from, e.to);
      }
      double per_edge_ms = timer.ElapsedMillis();

      // Strategy 2: one ApplyUpdates batch, rebuild disabled.
      CscIndex batched = CscIndex::Build(reduced, order);
      std::vector<EdgeUpdate> updates;
      for (const Edge& e : batch_edges) {
        updates.push_back(EdgeUpdate::Insert(e.from, e.to));
      }
      BatchOptions no_rebuild;
      no_rebuild.rebuild_threshold = 10.0;
      timer.Restart();
      ApplyUpdates(batched, updates, no_rebuild);
      double batch_ms = timer.ElapsedMillis();

      // Strategy 3: forced rebuild.
      CscIndex rebuilt = CscIndex::Build(reduced, order);
      BatchOptions always_rebuild;
      always_rebuild.rebuild_threshold = 0.0;
      timer.Restart();
      ApplyUpdates(rebuilt, updates, always_rebuild);
      double rebuild_ms = timer.ElapsedMillis();

      double churn =
          100.0 * static_cast<double>(k) /
          static_cast<double>(reduced.num_edges());
      table.AddRow({spec.name, TableReporter::FormatCount(k),
                    TableReporter::FormatDouble(per_edge_ms, 1),
                    TableReporter::FormatDouble(batch_ms, 1),
                    TableReporter::FormatDouble(rebuild_ms, 1),
                    TableReporter::FormatDouble(churn, 2)});
      json.BeginRow()
          .Field("graph", spec.name)
          .Field("batch_size", static_cast<uint64_t>(k))
          .Field("per_edge_ms", per_edge_ms)
          .Field("batch_ms", batch_ms)
          .Field("rebuild_ms", rebuild_ms)
          .Field("churn_pct", churn);
      std::printf("[batch] %s k=%zu: per-edge %.1fms, batch %.1fms, rebuild "
                  "%.1fms\n",
                  spec.name.c_str(), k, per_edge_ms, batch_ms, rebuild_ms);
    }
  }

  table.Print();
  table.WriteCsv(bench::CsvPath("batch_updates"));
  json.Write("BENCH_batch_updates.json");
  return 0;
}
