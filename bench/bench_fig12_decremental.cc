// Figure 12 reproduction: average decremental update time (a) and index
// decrease in label entries (b) on graph G04, with the deleted edges
// clustered by edge degree (indeg(from) + outdeg(to)) into High..Bottom.
//
// Expected shape (paper §VI.C): update time and the number of deleted
// entries both grow with edge degree; High-cluster deletions are roughly an
// order of magnitude costlier than Bottom-cluster ones.
#include <cstdio>
#include <cstdlib>

#include "bench/bench_common.h"
#include "csc/csc_index.h"
#include "dynamic/decremental.h"
#include "dynamic/incremental.h"
#include "graph/ordering.h"
#include "workload/degree_clusters.h"
#include "workload/reporter.h"
#include "workload/update_workload.h"

namespace {

size_t EdgesFromEnv() {
  const char* raw = std::getenv("CSC_BENCH_UPDATE_EDGES");
  if (raw == nullptr) return 100;  // the paper deletes 500 on G04
  long value = std::strtol(raw, nullptr, 10);
  return value > 0 ? static_cast<size_t>(value) : 100;
}

}  // namespace

int main() {
  using namespace csc;
  double scale = BenchScaleFromEnv();
  size_t num_edges = EdgesFromEnv();
  // The paper evaluates decremental maintenance on G04 only.
  DatasetSpec spec = FindDataset("G04").value();
  bench::PrintBanner("Figure 12: Decremental Maintenance (G04)", {spec},
                     scale);
  std::printf("# edges: %zu (CSC_BENCH_UPDATE_EDGES)\n", num_edges);

  DiGraph g = MaterializeDataset(spec, scale);
  VertexOrdering order = DegreeOrdering(g);
  CscIndex index = CscIndex::Build(g, order);

  // Cluster a large candidate pool by edge degree first, then take up to
  // num_edges/5 per cluster: random edges in a power-law graph are almost
  // all low-degree, which would leave the High cluster nearly empty.
  std::vector<Edge> pool =
      SampleExistingEdges(g, std::max<size_t>(num_edges * 10, 500), 1212);
  std::vector<size_t> pool_keys;
  pool_keys.reserve(pool.size());
  for (const Edge& e : pool) pool_keys.push_back(EdgeDegree(g, e));
  DegreeClustering pool_clusters = DegreeClustering::ByKeys(pool_keys);
  std::vector<Edge> batch;
  size_t per_cluster = std::max<size_t>(1, num_edges / kNumDegreeClusters);
  for (int c = 0; c < kNumDegreeClusters; ++c) {
    const auto& members = pool_clusters.Members(static_cast<DegreeCluster>(c));
    for (size_t i = 0; i < members.size() && i < per_cluster; ++i) {
      batch.push_back(pool[members[i]]);
    }
  }
  std::vector<size_t> keys;
  keys.reserve(batch.size());
  for (const Edge& e : batch) keys.push_back(EdgeDegree(g, e));
  DegreeClustering clusters = DegreeClustering::ByKeys(keys);

  struct ClusterAgg {
    double seconds = 0;
    uint64_t removed = 0;
    uint64_t count = 0;
  } agg[kNumDegreeClusters];

  for (size_t i = 0; i < batch.size(); ++i) {
    const Edge& e = batch[i];
    UpdateStats stats;
    if (!RemoveEdge(index, e.from, e.to, &stats)) continue;
    int c = static_cast<int>(clusters.ClusterOf(static_cast<Vertex>(i)));
    agg[c].seconds += stats.seconds;
    agg[c].removed += stats.entries_removed;
    ++agg[c].count;
    // Restore the edge (minimality keeps the next deletion's precondition:
    // decremental maintenance assumes a minimal index).
    InsertEdge(index, e.from, e.to, MaintenanceStrategy::kMinimality);
  }

  TableReporter table(
      "Figure 12(a)+(b): Avg Update Time (ms) / Index Decrease (entries)",
      {"Cluster", "edge-degree range", "#edges", "avg time(ms)",
       "avg entries removed"});
  JsonBenchReporter json("fig12_decremental");
  for (int c = 0; c < kNumDegreeClusters; ++c) {
    if (agg[c].count == 0) continue;
    double avg_ms = agg[c].seconds * 1000.0 / agg[c].count;
    double avg_removed = static_cast<double>(agg[c].removed) / agg[c].count;
    table.AddRow(
        {DegreeClusterName(static_cast<DegreeCluster>(c)),
         std::to_string(clusters.min_key()) + ".." +
             std::to_string(clusters.max_key()),
         TableReporter::FormatCount(agg[c].count),
         TableReporter::FormatDouble(avg_ms),
         TableReporter::FormatDouble(avg_removed, 1)});
    json.BeginRow()
        .Field("graph", spec.name)
        .Field("cluster",
               std::string(DegreeClusterName(static_cast<DegreeCluster>(c))))
        .Field("edges", agg[c].count)
        .Field("avg_update_ms", avg_ms)
        .Field("avg_entries_removed", avg_removed);
  }
  table.Print();
  table.WriteCsv(bench::CsvPath("fig12_decremental"));
  json.Write("BENCH_fig12_decremental.json");
  return 0;
}
