// Ordering ablation (ours): how the hub ordering drives CSC index size,
// build time, and query latency. The paper fixes the degree ordering
// (Example 4); this bench quantifies that choice against a degree-product
// ordering, a sampled-betweenness ordering, and a random ordering.
#include <cstdio>

#include "bench/bench_common.h"
#include "csc/csc_index.h"
#include "graph/ordering.h"
#include "util/timer.h"
#include "workload/query_workload.h"
#include "workload/reporter.h"

int main() {
  using namespace csc;
  double scale = BenchScaleFromEnv();
  std::vector<DatasetSpec> datasets = BenchDatasetsFromEnv();
  if (std::getenv("CSC_BENCH_DATASETS") == nullptr) {
    datasets = {FindDataset("G04").value(), FindDataset("G30").value()};
  }
  bench::PrintBanner("Ordering ablation: degree vs degree-product vs random",
                     datasets, scale);

  TableReporter table(
      "Ordering ablation (CSC index)",
      {"Graph", "Ordering", "build(s)", "entries", "avg query(us)"});
  JsonBenchReporter json("orderings");
  for (const DatasetSpec& spec : datasets) {
    DiGraph g = MaterializeDataset(spec, scale);
    struct Variant {
      const char* name;
      VertexOrdering order;
    };
    std::vector<Variant> variants;
    variants.push_back({"degree", DegreeOrdering(g)});
    variants.push_back({"degree-product", DegreeProductOrdering(g)});
    variants.push_back(
        {"betweenness-32", BetweennessSampleOrdering(g, 32, 11)});
    if (g.num_vertices() <= 16000) {
      // A random ordering inflates construction by two to three orders of
      // magnitude (that is the point of the ablation); only afford it on
      // the smallest graph.
      variants.push_back({"random", RandomOrdering(g.num_vertices(), 7)});
    }
    QueryWorkload workload = MakeQueryWorkload(g, 20000, 2);
    for (Variant& variant : variants) {
      CscIndex index = CscIndex::Build(g, variant.order);
      Timer timer;
      size_t queries = 0;
      for (const auto& cluster : workload.queries) {
        for (Vertex v : cluster) {
          index.Query(v);
          ++queries;
        }
      }
      double query_us = queries > 0 ? timer.ElapsedMicros() / queries : 0;
      table.AddRow({spec.name, variant.name,
                    TableReporter::FormatDouble(index.build_stats().seconds),
                    TableReporter::FormatCount(index.TotalEntries()),
                    TableReporter::FormatDouble(query_us, 2)});
      json.BeginRow()
          .Field("dataset", spec.name)
          .Field("ordering", std::string(variant.name))
          .Field("build_seconds", index.build_stats().seconds)
          .Field("label_entries", index.TotalEntries())
          .Field("query_us", query_us);
      std::printf("[orderings] %s %s done\n", spec.name.c_str(), variant.name);
    }
  }
  table.Print();
  table.WriteCsv(bench::CsvPath("orderings"));
  json.Write("BENCH_orderings.json");
  return 0;
}
