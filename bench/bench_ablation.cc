// Ablation study (ours, per DESIGN.md §5): what each CSC construction
// optimization buys. Compares the standard build against builds with
// couple-vertex skipping disabled and with distance pruning disabled.
#include <cstdio>

#include "bench/bench_common.h"
#include "csc/csc_index.h"
#include "graph/ordering.h"
#include "workload/reporter.h"

int main() {
  using namespace csc;
  double scale = BenchScaleFromEnv();
  // Ablations rebuild the index three times; keep to the two smallest
  // graphs unless the user filtered explicitly.
  std::vector<DatasetSpec> datasets = BenchDatasetsFromEnv();
  if (std::getenv("CSC_BENCH_DATASETS") == nullptr) {
    datasets = {FindDataset("G04").value(), FindDataset("G30").value()};
  }
  bench::PrintBanner("Ablation: CSC construction optimizations", datasets,
                     scale);

  TableReporter table("Ablation: build time / label entries / BFS dequeues",
                      {"Graph", "Variant", "time(s)", "entries",
                       "vertices dequeued", "pruned by distance"});
  JsonBenchReporter json("ablation");
  for (const DatasetSpec& spec : datasets) {
    DiGraph g = MaterializeDataset(spec, scale);
    VertexOrdering order = DegreeOrdering(g);
    struct Variant {
      const char* name;
      CscAblationConfig config;
    };
    const Variant variants[] = {
        {"standard", {}},
        {"no couple skipping", {.disable_couple_skipping = true}},
        {"no distance pruning", {.disable_distance_pruning = true}},
    };
    for (const Variant& variant : variants) {
      CscIndex index = BuildCscAblation(g, order, variant.config);
      const LabelBuildStats& s = index.build_stats();
      table.AddRow({spec.name, variant.name,
                    TableReporter::FormatDouble(s.seconds),
                    TableReporter::FormatCount(s.entries),
                    TableReporter::FormatCount(s.vertices_dequeued),
                    TableReporter::FormatCount(s.pruned_by_distance)});
      json.BeginRow()
          .Field("dataset", spec.name)
          .Field("variant", std::string(variant.name))
          .Field("build_seconds", s.seconds)
          .Field("label_entries", s.entries)
          .Field("vertices_dequeued", s.vertices_dequeued)
          .Field("pruned_by_distance", s.pruned_by_distance);
      std::printf("[ablation] %s %s: %.3fs\n", spec.name.c_str(),
                  variant.name, s.seconds);
    }
  }
  table.Print();
  table.WriteCsv(bench::CsvPath("ablation"));
  json.Write("BENCH_ablation.json");
  return 0;
}
