// Serving-tier comparison (ours, beyond the paper): the same built CSC
// labeling can be served from several in-memory forms with different
// size/latency/mutability trade-offs — now enumerated through the
// CycleIndex registry, so adding a backend automatically adds a row. This
// bench measures, per dataset and backend,
//
//   size    — resident index bytes (MemoryBytes) and label entries,
//   query   — mean SCCnt latency over a fixed random workload (the cached
//             backend is measured hot, i.e. after a warming pass), and
//   sweep   — wall time to answer all n queries, single-threaded vs. the
//             Engine's parallel batch dispatch.
//
// Expected shape: frozen ≲ csc < compact in latency (layout only — answers
// are identical); compressed trades a ~2x smaller payload for a
// decode-bound query; cached collapses repeat queries to an array read; the
// parallel sweep scales with cores until memory-bound.
// A sharded section measures the same backends behind ShardedEngine at
// 1/2/4/8 shards (batched-query throughput over the routed fan-out); its
// per-backend × per-shard-count rows are also emitted as BENCH_serving.json
// so CI tracks the serving-tier trajectory.
//
// A cold-start section times load-to-first-query for each persistable
// serving form through both load paths: the copying Parse path and the
// zero-copy mmap path (Engine::LoadFromFile). Pass --mmap to also serve
// the sharded matrix from a saved bundle through one shared mapping
// (ShardedEngine::LoadFromFile) instead of the freshly built engines.
//
// A churn section measures the writer-visible ApplyUpdates latency of the
// static serving forms under repeated toggle batches, synchronous
// (rebuild on the caller's thread) vs. asynchronous
// (ShardedEngineOptions::async_updates: return after validation, rebuilds
// land off-thread) — plus the drain time that separates admission from the
// landed swaps. Each mode also runs with incremental repair
// (ShardedEngineOptions::repair): batches land as bounded label patches
// against a pinned-ordering shadow instead of full rebuilds. A single-edge
// churn subsection isolates the repair-vs-rebuild update-to-queryable
// latency (admit + drain per one-edge batch) — the headline speedup of the
// repair pipeline. Rows go into BENCH_serving.json so CI tracks both the
// admission speedup and the repair speedup.
//
// An overload section sweeps offered write load x backlog cap on the
// frozen backend (async updates): each cell floods single-edge toggle
// batches against the cap with a deadline'd probe query between batches,
// reporting the shed rate (fraction rejected with kOverloaded) and the
// p50/p99 probe latency under pressure — also into BENCH_serving.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/cycle_index.h"
#include "csc/index_io.h"
#include "serving/engine.h"
#include "serving/sharded_engine.h"
#include "util/env.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "workload/reporter.h"
#include "workload/update_workload.h"

namespace {

using namespace csc;

// Mean per-query microseconds of `backend` over `vertices`, repeated until
// at least ~20ms of work so fast forms are not noise-dominated.
double MeanQueryMicros(const std::vector<Vertex>& vertices,
                       CycleIndex& backend) {
  uint64_t sink = 0;
  size_t rounds = 0;
  Timer timer;
  do {
    for (Vertex v : vertices) {
      CycleCount c = backend.CountShortestCycles(v);
      sink += c.count + c.length;
    }
    ++rounds;
  } while (timer.ElapsedSeconds() < 0.02);
  // Keep the compiler from eliding the query loop.
  if (sink == 0xdeadbeef) std::printf("!");
  return timer.ElapsedMicros() / static_cast<double>(rounds * vertices.size());
}

// Nearest-rank percentile of an unsorted latency sample (p in [0, 100]).
double PercentileMillis(std::vector<double> sample, double p) {
  if (sample.empty()) return 0.0;
  std::sort(sample.begin(), sample.end());
  size_t rank = static_cast<size_t>((p / 100.0) * sample.size());
  if (rank >= sample.size()) rank = sample.size() - 1;
  return sample[rank];
}

// Load-to-first-query milliseconds through `load`, or -1 on failure.
double ColdStartMillis(const std::function<bool(Engine&)>& load,
                       const std::string& backend, Vertex probe) {
  EngineOptions options;
  options.backend = backend;
  options.num_threads = 1;
  Engine engine(options);
  Timer timer;
  if (!load(engine)) return -1;
  CycleCount first = engine.Query(probe);
  double ms = timer.ElapsedMillis();
  if (first.count == 0xdeadbeef) std::printf("!");
  return ms;
}

}  // namespace

int main(int argc, char** argv) {
  bool mmap_shards = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--mmap") == 0) mmap_shards = true;
  }
  double scale = BenchScaleFromEnv();
  auto datasets = BenchDatasetsFromEnv();
  // The serving-tier forms; "bfs"/"precompute"/"hpspc" are selectable via
  // CSC_BENCH_BACKENDS but are baseline, not serving, configurations.
  auto backends = bench::BenchBackendsFromEnv(
      {"csc", "compact", "frozen", "compressed", "cached"});
  bench::PrintBanner("Serving tier: index backends (size / latency / sweep)",
                     datasets, scale);
  unsigned threads = ThreadPool::DefaultThreadCount();
  std::printf("# parallel sweep threads: %u\n", threads);

  TableReporter size_table(
      "Index backend sizes",
      {"Graph", "Backend", "entries", "resident", "B/entry", "build(s)"});
  TableReporter latency_table("Mean SCCnt latency (us) per backend",
                              {"Graph", "Backend", "latency"});
  TableReporter sweep_table(
      "All-vertex sweep (ms), frozen backend",
      {"Graph", "sequential", "engine-parallel", "speedup"});
  TableReporter shard_table(
      "ShardedEngine batched-query throughput (kq/s) by shard count",
      {"Graph", "Backend", "shards", "build(s)", "kq/s"});
  TableReporter cold_table(
      "Cold start: load-to-first-query (ms), parse vs. mmap",
      {"Graph", "Backend", "parse(ms)", "mmap(ms)", "speedup"});
  TableReporter churn_table(
      "Churn: writer-visible ApplyUpdates latency (ms), sync vs. async, "
      "rebuild vs. repair",
      {"Graph", "Backend", "shards", "mode", "mean-admit", "max-admit",
       "drain(ms)", "admit-speedup"});
  TableReporter single_edge_table(
      "Single-edge churn: update-to-queryable latency (ms), rebuild vs. "
      "repair",
      {"Graph", "Backend", "rebuild-uq", "repair-uq", "speedup", "patched",
       "derived"});
  TableReporter overload_table(
      "Overload matrix: offered write load x backlog cap -> shed rate and "
      "deadline'd query latency under pressure (frozen backend)",
      {"Graph", "offered", "cap", "shed-rate", "q-p50(ms)", "q-p99(ms)",
       "peak-backlog"});
  JsonBenchReporter json("serving");
  const std::vector<uint32_t> shard_counts = {1, 2, 4, 8};
  // The persistable serving forms with a load path (cold-start section).
  const std::vector<std::string> loadable = {"compact", "frozen", "compressed"};
  if (mmap_shards) {
    std::printf("# --mmap: sharded throughput measured over engines serving "
                "a saved bundle from one shared mapping\n");
  }

  for (const DatasetSpec& spec : datasets) {
    DiGraph graph = MaterializeDataset(spec, scale);

    // Fixed random query workload (reused for every backend).
    Rng rng(2024);
    std::vector<Vertex> workload;
    for (int i = 0; i < 2000; ++i) {
      workload.push_back(
          static_cast<Vertex>(rng.NextBounded(graph.num_vertices())));
    }

    for (const auto& name : backends) {
      std::unique_ptr<CycleIndex> backend = MakeBackend(name);
      backend->Build(graph);
      BackendStats stats = backend->Stats();
      double per_entry =
          stats.label_entries == 0
              ? 0.0
              : static_cast<double>(stats.memory_bytes) /
                    static_cast<double>(stats.label_entries);
      size_table.AddRow({spec.name, name,
                         TableReporter::FormatCount(stats.label_entries),
                         HumanBytes(stats.memory_bytes),
                         TableReporter::FormatDouble(per_entry, 2),
                         TableReporter::FormatDouble(stats.build_seconds)});

      // Warm memoizing backends once, then measure the hot path.
      if (name == "cached") {
        for (Vertex v : workload) backend->CountShortestCycles(v);
      }
      latency_table.AddRow(
          {spec.name, name,
           TableReporter::FormatDouble(MeanQueryMicros(workload, *backend))});
    }

    // Sweep: sequential loop vs. the Engine's batched parallel dispatch,
    // both over the frozen serving form.
    EngineOptions options;
    options.backend = "frozen";
    options.num_threads = threads;
    Engine engine(options);
    engine.Build(graph);
    std::shared_ptr<CycleIndex> frozen = engine.snapshot();
    Timer timer;
    uint64_t sink = 0;
    for (Vertex v = 0; v < frozen->num_vertices(); ++v) {
      sink += frozen->CountShortestCycles(v).count;
    }
    double sequential_ms = timer.ElapsedMillis();
    timer.Restart();
    std::vector<CycleCount> all = engine.QueryAll();
    double parallel_ms = timer.ElapsedMillis();
    sink += all.size();
    if (sink == 0xdeadbeef) std::printf("!");
    sweep_table.AddRow(
        {spec.name, TableReporter::FormatDouble(sequential_ms, 1),
         TableReporter::FormatDouble(parallel_ms, 1),
         TableReporter::FormatDouble(
             parallel_ms > 0 ? sequential_ms / parallel_ms : 0.0, 2)});

    // Cold start: persist each loadable serving form once, then time
    // load-to-first-query through the copying Parse path and the zero-copy
    // mmap path. (The file is freshly written, so both paths read warm
    // pages — this isolates the deserialization cost the mmap path
    // removes.)
    for (const auto& name : loadable) {
      std::unique_ptr<CycleIndex> backend = MakeBackend(name);
      backend->Build(graph);
      const std::string path = "bench_serving_cold." + name + ".idx";
      if (!SaveBackendToFile(*backend, path)) continue;
      Vertex probe = workload.front();
      double parse_ms = ColdStartMillis(
          [&path](Engine& engine) {
            std::optional<std::string> payload =
                ReadVerifiedPayload(path, nullptr);
            return payload && engine.LoadFrom(*payload);
          },
          name, probe);
      double mmap_ms = ColdStartMillis(
          [&path](Engine& engine) { return engine.LoadFromFile(path); },
          name, probe);
      std::remove(path.c_str());
      cold_table.AddRow(
          {spec.name, name, TableReporter::FormatDouble(parse_ms, 2),
           TableReporter::FormatDouble(mmap_ms, 2),
           TableReporter::FormatDouble(
               mmap_ms > 0 ? parse_ms / mmap_ms : 0.0, 2)});
      json.BeginRow()
          .Field("dataset", spec.name)
          .Field("backend", name)
          .Field("cold_parse_ms", parse_ms)
          .Field("cold_mmap_ms", mmap_ms);
    }

    // Sharded serving matrix: each backend behind ShardedEngine at 1/2/4/8
    // shards, measuring routed BatchQuery throughput over the same fixed
    // workload. Every shard replicates the build (the closure is the full
    // graph), so this section costs sum(shard_counts) builds per backend —
    // trim with CSC_BENCH_BACKENDS / CSC_BENCH_SCALE when iterating.
    for (const auto& name : backends) {
      for (uint32_t shards : shard_counts) {
        ShardedEngineOptions sharded_options;
        sharded_options.backend = name;
        sharded_options.num_shards = shards;
        ShardedEngine sharded(sharded_options);
        Timer build_timer;
        if (!sharded.Build(graph)) continue;
        double build_s = build_timer.ElapsedSeconds();
        // --mmap: measure over engines serving a saved bundle through one
        // shared read-only mapping instead of the freshly built shards
        // (backends without a persistent form keep the built engines).
        ShardedEngine* serving = &sharded;
        std::unique_ptr<ShardedEngine> mapped;
        if (mmap_shards) {
          std::string payload;
          const std::string path = "bench_serving_shards.idx";
          if (sharded.SaveTo(payload) && SavePayloadToFile(payload, path)) {
            mapped = std::make_unique<ShardedEngine>(sharded_options);
            if (mapped->LoadFromFile(path)) {
              serving = mapped.get();
            } else {
              mapped.reset();
            }
          }
          std::remove(path.c_str());
        }
        uint64_t queries = 0;
        uint64_t batch_sink = 0;
        Timer query_timer;
        do {
          std::vector<CycleCount> answers = serving->BatchQuery(workload);
          batch_sink += answers.back().count;
          queries += answers.size();
        } while (query_timer.ElapsedSeconds() < 0.05);
        if (batch_sink == 0xdeadbeef) std::printf("!");
        double qps = queries / query_timer.ElapsedSeconds();
        shard_table.AddRow({spec.name, name, std::to_string(shards),
                            TableReporter::FormatDouble(build_s),
                            TableReporter::FormatDouble(qps / 1e3, 1)});
        json.BeginRow()
            .Field("dataset", spec.name)
            .Field("backend", name)
            .Field("shards", static_cast<uint64_t>(shards))
            .Field("mode", serving == &sharded ? std::string("build")
                                               : std::string("mmap"))
            .Field("build_seconds", build_s)
            .Field("batch_qps", qps)
            .Field("resident_bytes", serving->MemoryBytes());
      }
    }
    // Churn vs. writer latency: every selected *static* serving form (the
    // ones whose updates go through rebuild-and-swap) under repeated
    // toggle batches. Sync admission pays the full rebuild per batch on
    // the writer thread; async admission returns after validation and
    // graph mutation, with the rebuild worker coalescing the backlog —
    // the drain column is where the rebuilds actually happen.
    constexpr size_t kChurnRounds = 6;
    constexpr size_t kChurnBatchEdges = 16;
    std::vector<Edge> churn_edges = SampleNewEdges(graph, kChurnBatchEdges, 7);
    std::vector<EdgeUpdate> churn_inserts, churn_removes;
    for (const Edge& e : churn_edges) {
      churn_inserts.push_back(EdgeUpdate::Insert(e.from, e.to));
      churn_removes.push_back(EdgeUpdate::Remove(e.from, e.to));
    }
    for (const auto& name : backends) {
      if (churn_edges.empty()) break;
      if (std::unique_ptr<CycleIndex> probe = MakeBackend(name);
          !probe || probe->supports_updates()) {
        continue;  // dynamic backends repair in place; nothing to offload
      }
      for (uint32_t shards : {1u, 4u}) {
        struct ChurnMode {
          bool async_mode;
          bool repair;
          const char* label;
          const char* json_mode;
        };
        constexpr ChurnMode kChurnModes[] = {
            {false, false, "sync", "churn_sync"},
            {true, false, "async", "churn_async"},
            {false, true, "sync+rep", "churn_sync_repair"},
            {true, true, "async+rep", "churn_async_repair"}};
        double sync_mean_ms = 0;
        for (const ChurnMode& mode : kChurnModes) {
          ShardedEngineOptions churn_options;
          churn_options.backend = name;
          churn_options.num_shards = shards;
          churn_options.async_updates = mode.async_mode;
          churn_options.repair.enabled = mode.repair;
          ShardedEngine engine(churn_options);
          if (!engine.Build(graph)) continue;
          double total_admit_ms = 0, max_admit_ms = 0;
          for (size_t round = 0; round < kChurnRounds; ++round) {
            const std::vector<EdgeUpdate>& batch =
                round % 2 == 0 ? churn_inserts : churn_removes;
            Timer admit;
            engine.ApplyUpdates(batch);
            double ms = admit.ElapsedMillis();
            total_admit_ms += ms;
            max_admit_ms = std::max(max_admit_ms, ms);
          }
          Timer drain_timer;
          engine.Drain();
          double drain_ms = drain_timer.ElapsedMillis();
          double mean_admit_ms =
              total_admit_ms / static_cast<double>(kChurnRounds);
          if (!mode.async_mode && !mode.repair) sync_mean_ms = mean_admit_ms;
          double speedup = (mode.async_mode || mode.repair) &&
                                   mean_admit_ms > 0
                               ? sync_mean_ms / mean_admit_ms
                               : 1.0;
          RepairStats repair_stats = engine.RepairStatsTotal();
          churn_table.AddRow(
              {spec.name, name, std::to_string(shards), mode.label,
               TableReporter::FormatDouble(mean_admit_ms, 3),
               TableReporter::FormatDouble(max_admit_ms, 3),
               TableReporter::FormatDouble(drain_ms, 3),
               TableReporter::FormatDouble(speedup, 1)});
          json.BeginRow()
              .Field("dataset", spec.name)
              .Field("backend", name)
              .Field("shards", static_cast<uint64_t>(shards))
              .Field("mode", std::string(mode.json_mode))
              .Field("churn_rounds", static_cast<uint64_t>(kChurnRounds))
              .Field("churn_batch_edges",
                     static_cast<uint64_t>(churn_edges.size()))
              .Field("churn_mean_admit_ms", mean_admit_ms)
              .Field("churn_max_admit_ms", max_admit_ms)
              .Field("churn_drain_ms", drain_ms)
              .Field("repair_patches", repair_stats.patches)
              .Field("repair_derived", repair_stats.rebuilds);
        }
      }
    }
    // Single-edge churn: the repair pipeline's headline metric — mean
    // update-to-queryable latency (admit + drain, per one-edge batch) with
    // legacy rebuild-and-swap vs. bounded label patches. One edge is the
    // paper's update model (§V measures per-edge maintenance cost), and it
    // is where patching wins biggest: the rebuild path pays a full labeling
    // construction per toggle, the repair path re-encodes a handful of
    // runs.
    for (const auto& name : backends) {
      if (churn_edges.empty()) break;
      if (std::unique_ptr<CycleIndex> probe = MakeBackend(name);
          !probe || probe->supports_updates() ||
          !probe->supports_label_patch()) {
        continue;
      }
      const Edge toggle = churn_edges.front();
      double uq_ms[2] = {0, 0};
      uint64_t patched = 0, derived = 0;
      for (int repair_mode = 0; repair_mode < 2; ++repair_mode) {
        ShardedEngineOptions single_options;
        single_options.backend = name;
        single_options.num_shards = 1;
        single_options.repair.enabled = repair_mode == 1;
        ShardedEngine engine(single_options);
        if (!engine.Build(graph)) {
          uq_ms[repair_mode] = -1;
          continue;
        }
        double total_ms = 0;
        for (size_t round = 0; round < kChurnRounds; ++round) {
          std::vector<EdgeUpdate> batch = {
              round % 2 == 0 ? EdgeUpdate::Insert(toggle.from, toggle.to)
                             : EdgeUpdate::Remove(toggle.from, toggle.to)};
          Timer round_timer;
          engine.ApplyUpdates(batch);
          engine.Drain();
          total_ms += round_timer.ElapsedMillis();
        }
        uq_ms[repair_mode] = total_ms / static_cast<double>(kChurnRounds);
        if (repair_mode == 1) {
          RepairStats repair_stats = engine.RepairStatsTotal();
          patched = repair_stats.patches;
          derived = repair_stats.rebuilds;
        }
      }
      double repair_speedup =
          uq_ms[0] > 0 && uq_ms[1] > 0 ? uq_ms[0] / uq_ms[1] : 0.0;
      single_edge_table.AddRow(
          {spec.name, name, TableReporter::FormatDouble(uq_ms[0], 3),
           TableReporter::FormatDouble(uq_ms[1], 3),
           TableReporter::FormatDouble(repair_speedup, 1),
           std::to_string(patched), std::to_string(derived)});
      json.BeginRow()
          .Field("dataset", spec.name)
          .Field("backend", name)
          .Field("mode", std::string("churn_single_edge"))
          .Field("churn_rounds", static_cast<uint64_t>(kChurnRounds))
          .Field("rebuild_update_to_queryable_ms", uq_ms[0])
          .Field("repair_update_to_queryable_ms", uq_ms[1])
          .Field("repair_speedup", repair_speedup)
          .Field("repair_patches", patched)
          .Field("repair_derived", derived);
    }
    // Overload matrix: a single-edge toggle flood at several offered loads
    // against several backlog caps, with a deadline'd probe query between
    // every offered batch. Reported per cell: the shed rate (fraction of
    // offered batches rejected with kOverloaded — the admission gate doing
    // its job) and the p50/p99 of the probe's query latency under that
    // write pressure (the snapshot-swap read path should keep both flat
    // regardless of the backlog behind it).
    {
      std::vector<Edge> overload_edges = SampleNewEdges(graph, 1, 9);
      Rng probe_rng(4242);
      std::vector<Vertex> probes;
      for (int i = 0; i < 64; ++i) {
        probes.push_back(
            static_cast<Vertex>(probe_rng.NextBounded(graph.num_vertices())));
      }
      for (size_t offered : {size_t{32}, size_t{128}}) {
        for (uint64_t cap : {uint64_t{2}, uint64_t{8}}) {
          if (overload_edges.empty()) break;
          const Edge toggle = overload_edges.front();
          EngineOptions overload_options;
          overload_options.backend = "frozen";
          overload_options.async_updates = true;
          overload_options.admission.max_pending_batches = cap;
          Engine engine(overload_options);
          if (!engine.Build(graph)) continue;
          uint64_t shed = 0;
          bool present = false;
          std::vector<double> query_ms;
          query_ms.reserve(offered);
          for (size_t i = 0; i < offered; ++i) {
            std::vector<EdgeUpdate> batch = {
                present ? EdgeUpdate::Remove(toggle.from, toggle.to)
                        : EdgeUpdate::Insert(toggle.from, toggle.to)};
            std::vector<UpdateVerdict> verdicts;
            engine.ApplyUpdates(batch, &verdicts);
            if (!verdicts.empty() &&
                verdicts[0] == UpdateVerdict::kApplied) {
              present = !present;
            } else {
              ++shed;
            }
            QueryOptions budget;
            budget.deadline =
                Deadline::After(std::chrono::milliseconds(50));
            Timer probe_timer;
            QueryResult answer =
                engine.Query(probes[i % probes.size()], budget);
            query_ms.push_back(probe_timer.ElapsedMillis());
            if (answer.count.count == 0xdeadbeef) std::printf("!");
          }
          engine.Drain();
          AdmissionStats admission = engine.admission_stats();
          double shed_rate =
              offered > 0 ? static_cast<double>(shed) /
                                static_cast<double>(offered)
                          : 0.0;
          double p50 = PercentileMillis(query_ms, 50);
          double p99 = PercentileMillis(query_ms, 99);
          overload_table.AddRow(
              {spec.name, std::to_string(offered), std::to_string(cap),
               TableReporter::FormatDouble(shed_rate, 3),
               TableReporter::FormatDouble(p50, 4),
               TableReporter::FormatDouble(p99, 4),
               std::to_string(admission.peak_pending_batches)});
          json.BeginRow()
              .Field("dataset", spec.name)
              .Field("backend", std::string("frozen"))
              .Field("mode", std::string("overload"))
              .Field("offered_batches", static_cast<uint64_t>(offered))
              .Field("backlog_cap", cap)
              .Field("shed_rate", shed_rate)
              .Field("shed_batches", admission.shed_batches)
              .Field("query_p50_ms", p50)
              .Field("query_p99_ms", p99)
              .Field("query_timeouts", admission.query_timeouts)
              .Field("peak_pending_batches", admission.peak_pending_batches);
        }
      }
    }
    std::printf("[serving] %s done\n", spec.name.c_str());
  }

  size_table.Print();
  latency_table.Print();
  sweep_table.Print();
  cold_table.Print();
  shard_table.Print();
  churn_table.Print();
  single_edge_table.Print();
  overload_table.Print();
  size_table.WriteCsv(bench::CsvPath("serving_sizes"));
  latency_table.WriteCsv(bench::CsvPath("serving_latency"));
  sweep_table.WriteCsv(bench::CsvPath("serving_sweep"));
  cold_table.WriteCsv(bench::CsvPath("serving_cold_start"));
  shard_table.WriteCsv(bench::CsvPath("serving_sharded"));
  churn_table.WriteCsv(bench::CsvPath("serving_churn"));
  single_edge_table.WriteCsv(bench::CsvPath("serving_churn_single_edge"));
  overload_table.WriteCsv(bench::CsvPath("serving_overload"));
  json.Write("BENCH_serving.json");
  return 0;
}
