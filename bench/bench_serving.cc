// Serving-tier comparison (ours, beyond the paper): the same built CSC
// labeling can be served from five in-memory forms with different
// size/latency/mutability trade-offs. This bench measures, per dataset,
//
//   size    — resident index bytes (the paper's 8 B/entry accounting for the
//             dynamic/compact/frozen forms; actual byte streams for the
//             compressed form),
//   query   — mean SCCnt latency over a fixed random workload, and
//   sweep   — wall time to answer all n queries, single-threaded and via the
//             parallel batch API.
//
// Expected shape: frozen ≲ dynamic < compact in latency (layout only —
// answers are identical); compressed trades ~2x smaller payload for a
// decode-bound query; the cached form collapses repeat queries to an array
// read; the parallel sweep scales with cores until memory-bound.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "csc/cached_index.h"
#include "csc/compact_index.h"
#include "csc/csc_index.h"
#include "csc/frozen_index.h"
#include "csc/parallel_query.h"
#include "graph/ordering.h"
#include "labeling/compressed.h"
#include "util/env.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "workload/reporter.h"

namespace {

using namespace csc;

// Mean per-query microseconds of `query` over `vertices`, repeated until at
// least ~20ms of work so fast forms are not noise-dominated.
template <typename QueryFn>
double MeanQueryMicros(const std::vector<Vertex>& vertices, QueryFn query) {
  uint64_t sink = 0;
  size_t rounds = 0;
  Timer timer;
  do {
    for (Vertex v : vertices) {
      CycleCount c = query(v);
      sink += c.count + c.length;
    }
    ++rounds;
  } while (timer.ElapsedSeconds() < 0.02);
  // Keep the compiler from eliding the query loop.
  if (sink == 0xdeadbeef) std::printf("!");
  return timer.ElapsedMicros() / static_cast<double>(rounds * vertices.size());
}

}  // namespace

int main() {
  using namespace csc;
  double scale = BenchScaleFromEnv();
  auto datasets = BenchDatasetsFromEnv();
  bench::PrintBanner("Serving tier: index forms (size / latency / sweep)",
                     datasets, scale);

  ThreadPool pool(ThreadPool::DefaultThreadCount());
  std::printf("# parallel sweep threads: %u\n", pool.num_threads());

  TableReporter size_table(
      "Index form sizes",
      {"Graph", "dynamic", "compact", "frozen", "compressed", "B/entry"});
  TableReporter latency_table(
      "Mean SCCnt latency (us) per index form",
      {"Graph", "dynamic", "compact", "frozen", "compressed", "cached(hot)"});
  TableReporter sweep_table(
      "All-vertex sweep (ms)",
      {"Graph", "sequential", "parallel", "speedup"});

  for (const DatasetSpec& spec : datasets) {
    DiGraph graph = MaterializeDataset(spec, scale);
    CscIndex index = CscIndex::Build(graph, DegreeOrdering(graph));
    CompactIndex compact = CompactIndex::FromIndex(index);
    FrozenIndex frozen = FrozenIndex::FromCompact(compact);
    CompressedIndex compressed = CompressedIndex::FromCompact(compact);
    CachedCscIndex cached(CscIndex::Build(graph, DegreeOrdering(graph)));

    size_table.AddRow({spec.name, HumanBytes(index.SizeBytes()),
                       HumanBytes(compact.SizeBytes()),
                       HumanBytes(frozen.SizeBytes()),
                       HumanBytes(compressed.SizeBytes()),
                       TableReporter::FormatDouble(
                           compressed.BytesPerEntry(), 2)});

    // Fixed random query workload (reused for every form).
    Rng rng(2024);
    std::vector<Vertex> workload;
    for (int i = 0; i < 2000; ++i) {
      workload.push_back(
          static_cast<Vertex>(rng.NextBounded(graph.num_vertices())));
    }
    double dynamic_us =
        MeanQueryMicros(workload, [&](Vertex v) { return index.Query(v); });
    double compact_us =
        MeanQueryMicros(workload, [&](Vertex v) { return compact.Query(v); });
    double frozen_us =
        MeanQueryMicros(workload, [&](Vertex v) { return frozen.Query(v); });
    double compressed_us = MeanQueryMicros(
        workload, [&](Vertex v) { return compressed.Query(v); });
    // Warm the cache once, then measure the hot path.
    for (Vertex v : workload) cached.Query(v);
    double cached_us =
        MeanQueryMicros(workload, [&](Vertex v) { return cached.Query(v); });

    latency_table.AddRow({spec.name, TableReporter::FormatDouble(dynamic_us),
                          TableReporter::FormatDouble(compact_us),
                          TableReporter::FormatDouble(frozen_us),
                          TableReporter::FormatDouble(compressed_us),
                          TableReporter::FormatDouble(cached_us)});

    Timer timer;
    uint64_t sink = 0;
    for (Vertex v = 0; v < frozen.num_original_vertices(); ++v) {
      sink += frozen.Query(v).count;
    }
    double sequential_ms = timer.ElapsedMillis();
    timer.Restart();
    std::vector<CycleCount> all = QueryAllVertices(frozen, pool);
    double parallel_ms = timer.ElapsedMillis();
    sink += all.size();
    if (sink == 0xdeadbeef) std::printf("!");
    sweep_table.AddRow(
        {spec.name, TableReporter::FormatDouble(sequential_ms, 1),
         TableReporter::FormatDouble(parallel_ms, 1),
         TableReporter::FormatDouble(
             parallel_ms > 0 ? sequential_ms / parallel_ms : 0.0, 2)});
    std::printf("[serving] %s: frozen %.2f us, compressed %.2f us (%.2f "
                "B/entry)\n",
                spec.name.c_str(), frozen_us, compressed_us,
                compressed.BytesPerEntry());
  }

  size_table.Print();
  latency_table.Print();
  sweep_table.Print();
  size_table.WriteCsv(bench::CsvPath("serving_sizes"));
  latency_table.WriteCsv(bench::CsvPath("serving_latency"));
  sweep_table.WriteCsv(bench::CsvPath("serving_sweep"));
  return 0;
}
