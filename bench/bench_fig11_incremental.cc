// Figure 11 reproduction: (a) average incremental update time and (b) index
// increase (# of label entries) per edge insertion, under the minimality and
// redundancy strategies.
//
// Workload (paper §VI.A): random existing edges are removed from the graph
// up front, the index is built on the reduced graph, and the removed edges
// are inserted back one at a time through INCCNT.
//
// Expected shape (paper §VI.C.1): redundancy updates are orders of magnitude
// faster than minimality (58-678x in the paper) while the index grows only
// slightly more; minimality is skipped for the largest graphs (the paper
// omits it for WAR and WSR for the same reason).
#include <cstdio>
#include <cstdlib>

#include "bench/bench_common.h"
#include "csc/csc_index.h"
#include "dynamic/incremental.h"
#include "graph/ordering.h"
#include "workload/reporter.h"
#include "workload/update_workload.h"

namespace {

size_t EdgesFromEnv() {
  const char* raw = std::getenv("CSC_BENCH_UPDATE_EDGES");
  if (raw == nullptr) return 50;  // the paper uses [200, 500]
  long value = std::strtol(raw, nullptr, 10);
  return value > 0 ? static_cast<size_t>(value) : 50;
}

}  // namespace

int main() {
  using namespace csc;
  double scale = BenchScaleFromEnv();
  auto datasets = BenchDatasetsFromEnv();
  size_t num_edges = EdgesFromEnv();
  bench::PrintBanner(
      "Figure 11: Incremental Maintenance (minimality vs redundancy)",
      datasets, scale);
  std::printf("# edges per graph: %zu (CSC_BENCH_UPDATE_EDGES)\n", num_edges);

  TableReporter table(
      "Figure 11(a)+(b): Avg Update Time (ms) and Index Increase (entries)",
      {"Graph", "Strategy", "edges", "avg time(ms)", "avg entry delta",
       "entries added", "entries removed"});
  JsonBenchReporter json("fig11_incremental");
  for (const DatasetSpec& spec : datasets) {
    DiGraph g = MaterializeDataset(spec, scale);
    std::vector<Edge> batch = SampleExistingEdges(g, num_edges, 4242);
    for (const Edge& e : batch) g.RemoveEdge(e.from, e.to);
    VertexOrdering order = DegreeOrdering(g);

    // "Due to the time cost of minimality strategy, it is omitted for
    // graphs WAR and WSR" — mirror the paper via the paper-scale edge count.
    bool run_minimality = spec.paper_m < 20000000;
    for (int strategy_idx = 0; strategy_idx < (run_minimality ? 2 : 1);
         ++strategy_idx) {
      MaintenanceStrategy strategy = strategy_idx == 0
                                         ? MaintenanceStrategy::kRedundancy
                                         : MaintenanceStrategy::kMinimality;
      CscIndex index = CscIndex::Build(g, order);
      if (strategy == MaintenanceStrategy::kMinimality) {
        index.EnsureInvertedIndexes();
      }
      UpdateStats stats;
      uint64_t entries_before = index.TotalEntries();
      for (const Edge& e : batch) {
        InsertEdge(index, e.from, e.to, strategy, &stats);
      }
      double avg_ms = stats.seconds * 1000.0 / batch.size();
      double avg_delta =
          static_cast<double>(index.TotalEntries() - entries_before) /
          batch.size();
      const char* name = strategy == MaintenanceStrategy::kRedundancy
                             ? "Redundancy"
                             : "Minimality";
      table.AddRow({spec.name, name, TableReporter::FormatCount(batch.size()),
                    TableReporter::FormatDouble(avg_ms),
                    TableReporter::FormatDouble(avg_delta, 1),
                    TableReporter::FormatCount(stats.entries_added),
                    TableReporter::FormatCount(stats.entries_removed)});
      json.BeginRow()
          .Field("graph", spec.name)
          .Field("strategy", std::string(name))
          .Field("edges", static_cast<uint64_t>(batch.size()))
          .Field("avg_update_ms", avg_ms)
          .Field("avg_entry_delta", avg_delta)
          .Field("entries_added", stats.entries_added)
          .Field("entries_removed", stats.entries_removed);
      std::printf("[fig11] %s %s: %.3f ms/update\n", spec.name.c_str(), name,
                  avg_ms);
    }
  }
  table.Print();
  table.WriteCsv(bench::CsvPath("fig11_incremental"));
  json.Write("BENCH_fig11_incremental.json");
  return 0;
}
