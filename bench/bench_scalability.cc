// Scalability sweep (ours, beyond the paper's fixed nine datasets): build
// time, index size, query latency and update latency as the graph grows,
// with the generator family and density held fixed. This isolates the n-
// dependence the paper's Theorem IV.1 predicts (O(n ω log n) index size,
// polylog query) from dataset-to-dataset structure changes.
//
// Expected shape: build time grows mildly super-linearly, entries/vertex
// grows ~logarithmically, query latency stays in microseconds, and
// incremental updates stay far below a rebuild at every size.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/bench_common.h"
#include "baseline/bfs_cycle.h"
#include "csc/csc_index.h"
#include "dynamic/incremental.h"
#include "graph/generators.h"
#include "graph/ordering.h"
#include "util/random.h"
#include "util/timer.h"
#include "workload/reporter.h"
#include "workload/update_workload.h"

namespace {

unsigned StepsFromEnv() {
  const char* raw = std::getenv("CSC_BENCH_SCALE_STEPS");
  if (raw == nullptr) return 5;
  long value = std::strtol(raw, nullptr, 10);
  return value > 0 && value <= 12 ? static_cast<unsigned>(value) : 5;
}

}  // namespace

int main() {
  using namespace csc;
  double scale = BenchScaleFromEnv();
  unsigned steps = StepsFromEnv();
  std::printf("# Scalability sweep: preferential-attachment graphs, n "
              "doubling %u times from %d (CSC_BENCH_SCALE, "
              "CSC_BENCH_SCALE_STEPS)\n",
              steps, static_cast<int>(2000 * scale));

  TableReporter table(
      "Scalability: build / size / query / update vs n",
      {"n", "m", "build(s)", "entries", "entr/n", "query(us)", "bfs(us)",
       "insert(ms)"});
  JsonBenchReporter json("scalability");

  Vertex n = static_cast<Vertex>(2000 * scale);
  if (n < 64) n = 64;
  for (unsigned step = 0; step < steps; ++step, n *= 2) {
    DiGraph graph = GeneratePreferentialAttachment(n, 2, 0.1, 1234 + step);

    Timer timer;
    CscIndex index = CscIndex::Build(graph, DegreeOrdering(graph));
    double build_seconds = timer.ElapsedSeconds();

    // Query latency: 2000 random vertices, index vs BFS baseline.
    Rng rng(99);
    std::vector<Vertex> workload;
    for (int i = 0; i < 2000; ++i) {
      workload.push_back(static_cast<Vertex>(rng.NextBounded(n)));
    }
    timer.Restart();
    uint64_t sink = 0;
    for (Vertex v : workload) sink += index.Query(v).count;
    double query_us = timer.ElapsedMicros() / workload.size();

    BfsCycleCounter bfs(graph);
    size_t bfs_queries = std::min<size_t>(workload.size(), 200);
    timer.Restart();
    for (size_t i = 0; i < bfs_queries; ++i) {
      sink += bfs.CountCycles(workload[i]).count;
    }
    double bfs_us = timer.ElapsedMicros() / bfs_queries;
    if (sink == 0xdeadbeef) std::printf("!");

    // Update latency: re-insert sampled edges through INCCNT.
    std::vector<Edge> edges = SampleExistingEdges(graph, 20, 777);
    DiGraph reduced = graph;
    for (const Edge& e : edges) reduced.RemoveEdge(e.from, e.to);
    CscIndex dynamic_index =
        CscIndex::Build(reduced, DegreeOrdering(reduced));
    UpdateStats stats;
    for (const Edge& e : edges) {
      InsertEdge(dynamic_index, e.from, e.to,
                 MaintenanceStrategy::kRedundancy, &stats);
    }
    double insert_ms = stats.seconds * 1e3 / edges.size();

    table.AddRow(
        {TableReporter::FormatCount(n),
         TableReporter::FormatCount(graph.num_edges()),
         TableReporter::FormatDouble(build_seconds),
         TableReporter::FormatCount(index.TotalEntries()),
         TableReporter::FormatDouble(
             static_cast<double>(index.TotalEntries()) / n, 1),
         TableReporter::FormatDouble(query_us, 2),
         TableReporter::FormatDouble(bfs_us, 1),
         TableReporter::FormatDouble(insert_ms)});
    json.BeginRow()
        .Field("n", static_cast<uint64_t>(n))
        .Field("m", graph.num_edges())
        .Field("build_seconds", build_seconds)
        .Field("label_entries", index.TotalEntries())
        .Field("query_us", query_us)
        .Field("bfs_us", bfs_us)
        .Field("insert_ms", insert_ms);
    std::printf("[scalability] n=%u: build %.2fs, query %.2fus, insert "
                "%.3fms\n",
                n, build_seconds, query_us, insert_ms);
  }

  table.Print();
  table.WriteCsv(csc::bench::CsvPath("scalability"));
  json.Write("BENCH_scalability.json");
  return 0;
}
